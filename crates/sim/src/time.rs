//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since the start of the simulation.
//! Nanosecond resolution lets us represent both the sub-microsecond port
//! serialization delays of a 400Gbps link and multi-hour training runs
//! (2^64 ns ≈ 584 years) without floating-point drift in the event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero instant — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "SimTime from negative/NaN seconds"
        );
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Infinite or out-of-range values saturate to [`SimDuration::MAX`],
    /// which the event engine treats as "never". This arises naturally when
    /// a flow currently has zero allocated rate and its completion horizon
    /// is therefore unbounded.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && !s.is_nan(),
            "SimDuration from negative/NaN seconds"
        );
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating scalar multiply.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_millis(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 8_000_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn f64_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        // Infinite horizon saturates rather than panicking.
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
