//! Bandwidth and data-size unit helpers.
//!
//! The paper mixes Gbps (link speeds), GBps (NVLINK), and GB/GiB message
//! sizes. Internally everything is bits (f64) and bits-per-second (f64);
//! these helpers keep call sites honest about which unit they meant.

/// Bits per second from gigabits per second (decimal, as link speeds are quoted).
pub const fn gbps(g: u64) -> f64 {
    (g * 1_000_000_000) as f64
}

/// Bits per second from gigaBYTES per second (used for NVLINK speeds).
pub const fn gbytes_per_sec(g: u64) -> f64 {
    (g * 8 * 1_000_000_000) as f64
}

/// Bits from bytes.
pub fn bits_from_bytes(bytes: f64) -> f64 {
    bytes * 8.0
}

/// Bits from mebibytes (NCCL-style message sizes: 1M = 2^20 bytes).
pub fn mib(m: f64) -> f64 {
    m * 1024.0 * 1024.0 * 8.0
}

/// Bits from gibibytes.
pub fn gib(g: f64) -> f64 {
    g * 1024.0 * 1024.0 * 1024.0 * 8.0
}

/// Bytes from bits.
pub fn bytes_from_bits(bits: f64) -> f64 {
    bits / 8.0
}

/// Format a bit count as a human-readable byte size (for reports).
pub fn fmt_bytes(bits: f64) -> String {
    let b = bits / 8.0;
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2}KB", b / 1e3)
    } else {
        format!("{:.0}B", b)
    }
}

/// Format a rate in bits/s as Gbps.
pub fn fmt_gbps(bps: f64) -> String {
    format!("{:.1}Gbps", bps / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_speed_units() {
        assert_eq!(gbps(400), 400e9);
        assert_eq!(gbps(200) * 2.0, gbps(400));
        // NVLINK 400GBps = 3200 Gbps.
        assert_eq!(gbytes_per_sec(400), gbps(3200));
    }

    #[test]
    fn size_units() {
        assert_eq!(mib(1.0), 8.0 * 1024.0 * 1024.0);
        assert_eq!(gib(1.0), mib(1024.0));
        assert_eq!(bits_from_bytes(10.0), 80.0);
        assert_eq!(bytes_from_bits(80.0), 10.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(gib(4.0)), "4.29GB");
        assert_eq!(fmt_gbps(gbps(400)), "400.0Gbps");
        assert_eq!(fmt_bytes(8.0 * 500.0), "500B");
    }
}
