//! Equivalence suite: the incremental and parallel allocators must
//! produce the same max-min rates as the dense reference oracle under
//! arbitrary flow churn and link perturbations.
//!
//! Within one bottleneck component the two solvers perform identical
//! arithmetic, but when several components are live the dense solver
//! interleaves their filling rounds (one global delta per round) while the
//! incremental solver fills each component alone — same fixpoint, different
//! float summation order. Rates are therefore compared with `RATE_EPS` as a
//! *relative* tolerance, which at 1e-6 is far tighter than any behavioural
//! difference the figures could see. Bitwise identity is asserted where it
//! is guaranteed: flows whose component was untouched by a perturbation.

use hpn_sim::{
    AllocatorKind, FlowHandle, FlowNet, FlowSpec, LinkId, ParallelIncrementalMaxMin, SimTime,
};
use proptest::prelude::*;

const GBPS: f64 = 1e9;
/// Mirrors the solver's internal saturation tolerance.
const RATE_EPS: f64 = 1e-6;

/// One step of a churn scenario, driven by proptest-chosen integers.
#[derive(Clone, Debug)]
enum Op {
    /// Start a flow over the given link picks with the given demand (Gbps).
    Add { picks: Vec<usize>, demand_gbps: u64 },
    /// Kill the n-th oldest live flow (modulo live count).
    Kill { nth: usize },
    /// Set a link's capacity (Gbps; 0 is allowed and models a dead link).
    SetCap { link: usize, cap_gbps: u64 },
    /// Toggle a link down/up.
    Toggle { link: usize },
}

fn op_strategy(nlinks: usize) -> impl Strategy<Value = Op> {
    (
        0usize..4,
        proptest::collection::vec(0usize..nlinks, 1..4),
        1u64..=400,
        0usize..16,
    )
        .prop_map(move |(which, picks, demand, idx)| match which {
            0 | 1 => Op::Add {
                picks,
                demand_gbps: demand,
            },
            2 => Op::Kill { nth: idx },
            _ => {
                if demand % 2 == 0 {
                    Op::SetCap {
                        link: idx % nlinks,
                        cap_gbps: demand / 2,
                    }
                } else {
                    Op::Toggle { link: idx % nlinks }
                }
            }
        })
}

/// A FlowNet plus the bookkeeping to replay one op sequence on it.
struct Driver {
    net: FlowNet,
    links: Vec<LinkId>,
    live: Vec<FlowHandle>,
    down: Vec<bool>,
    next_tag: u64,
}

impl Driver {
    fn new(kind: AllocatorKind, caps_gbps: &[u64]) -> Self {
        Self::with_net(FlowNet::with_allocator(kind), caps_gbps)
    }

    /// A driver over the parallel allocator with `jobs` workers; the
    /// minimum closure size is dropped to 0 so even these tiny nets take
    /// the pool path.
    fn parallel(jobs: usize, caps_gbps: &[u64]) -> Self {
        Self::with_net(
            FlowNet::with_allocator_box(Box::new(
                ParallelIncrementalMaxMin::with_jobs(jobs).min_component_flows(0),
            )),
            caps_gbps,
        )
    }

    fn with_net(mut net: FlowNet, caps_gbps: &[u64]) -> Self {
        let links = caps_gbps
            .iter()
            .map(|&c| net.add_link(c as f64 * GBPS, f64::INFINITY))
            .collect();
        Driver {
            net,
            links,
            live: Vec::new(),
            down: vec![false; caps_gbps.len()],
            next_tag: 0,
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Add { picks, demand_gbps } => {
                let mut path: Vec<LinkId> = picks.iter().map(|&i| self.links[i]).collect();
                path.dedup();
                let path = self.net.intern_path(&path);
                let h = self.net.start_flow(
                    SimTime::ZERO,
                    FlowSpec {
                        path,
                        size_bits: 1e15,
                        demand_bps: *demand_gbps as f64 * GBPS,
                        tag: self.next_tag,
                    },
                );
                self.next_tag += 1;
                self.live.push(h);
            }
            Op::Kill { nth } => {
                if !self.live.is_empty() {
                    let h = self.live.remove(nth % self.live.len());
                    assert!(self.net.kill_flow(SimTime::ZERO, h));
                }
            }
            Op::SetCap { link, cap_gbps } => {
                self.net
                    .set_link_capacity(self.links[*link], *cap_gbps as f64 * GBPS);
            }
            Op::Toggle { link } => {
                self.down[*link] = !self.down[*link];
                self.net.set_link_up(self.links[*link], !self.down[*link]);
            }
        }
    }

    fn rates(&mut self) -> Vec<f64> {
        let live = self.live.clone();
        live.iter()
            .map(|&h| self.net.flow_rate(h).expect("live flow has a rate"))
            .collect()
    }
}

fn assert_rates_agree(dense: &[f64], incr: &[f64], when: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(dense.len(), incr.len());
    for (i, (&d, &x)) in dense.iter().zip(incr.iter()).enumerate() {
        // Both allocators fill component-by-component with identical float
        // arithmetic, so agreement is bitwise, not merely within RATE_EPS —
        // this is what lets figures regenerate byte-identically under
        // either allocator. (RATE_EPS remains the documented *contract*;
        // the implementation delivers exact equality.)
        prop_assert!(
            d.to_bits() == x.to_bits(),
            "{}: flow {} dense={} ({:#x}) incremental={} ({:#x}) diff {} (tol {})",
            when,
            i,
            d,
            d.to_bits(),
            x,
            x.to_bits(),
            (d - x).abs(),
            RATE_EPS * d.abs().max(x.abs()).max(1.0)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole acceptance property: random add/remove/capacity
    /// sequences through every allocator (dense, incremental, parallel at
    /// 1 and 3 workers) produce rates that agree bitwise after every
    /// single event.
    #[test]
    fn incremental_matches_dense_oracle(
        caps in proptest::collection::vec(1u64..=400, 2..7),
        ops_salt in 0u64..u64::MAX,
    ) {
        // Generate ops with a nested, caps-derived strategy: op link
        // indices must stay within `caps.len()`, which the outer strategy
        // only fixes at generation time.
        let nlinks = caps.len();
        let ops = proptest::collection::vec(op_strategy(nlinks), 1..40);
        let mut rng = proptest::TestRng::new(caps.iter().fold(
            ops_salt,
            |acc, &c| acc.wrapping_mul(31).wrapping_add(c),
        ));
        let ops = ops.generate(&mut rng);
        let mut dense = Driver::new(AllocatorKind::Dense, &caps);
        let mut incr = Driver::new(AllocatorKind::Incremental, &caps);
        let mut par1 = Driver::parallel(1, &caps);
        let mut par3 = Driver::parallel(3, &caps);
        for (step, op) in ops.iter().enumerate() {
            dense.apply(op);
            incr.apply(op);
            par1.apply(op);
            par3.apply(op);
            let rd = dense.rates();
            let ri = incr.rates();
            assert_rates_agree(&rd, &ri, &format!("after step {step} ({op:?})"))?;
            let rp1 = par1.rates();
            let rp3 = par3.rates();
            assert_rates_agree(&ri, &rp1, &format!("parallel(1) after step {step} ({op:?})"))?;
            assert_rates_agree(&ri, &rp3, &format!("parallel(3) after step {step} ({op:?})"))?;
        }
        // Feasibility cross-check: the incremental allocator never
        // oversubscribes. (Link aggregates refresh on recompute; flush the
        // lazy dirty flag first — the final ops may have left no live flow
        // to pull rates through.)
        incr.net.recompute_if_dirty();
        for (i, &l) in incr.links.clone().iter().enumerate() {
            if !incr.down[i] {
                let alloc = incr.net.link(l).allocated_bps;
                let cap = incr.net.link(l).nominal_bps;
                prop_assert!(alloc <= cap * (1.0 + 1e-6) + 1.0,
                    "link {i} oversubscribed: {alloc} > {cap}");
            }
        }
    }
}

/// Regression for the exactness claim: a perturbation in one bottleneck
/// component must leave rates in an isolated component **bitwise**
/// unchanged — the incremental allocator never rewrites them at all.
#[test]
fn isolated_component_rates_bitwise_stable() {
    let mut net = FlowNet::with_allocator(AllocatorKind::Incremental);
    let a = net.add_link(100.0 * GBPS, f64::INFINITY);
    let b = net.add_link(70.0 * GBPS, f64::INFINITY);
    let c = net.add_link(55.0 * GBPS, f64::INFINITY);
    let pab = net.intern_path(&[a, b]);
    let pa = net.intern_path(&[a]);
    let pc = net.intern_path(&[c]);
    // Component 1: two flows tangled over links a,b with awkward demands so
    // the rates are not round numbers.
    let f1 = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pab,
            size_bits: 1e15,
            demand_bps: 37.3 * GBPS,
            tag: 0,
        },
    );
    let f2 = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pa,
            size_bits: 1e15,
            demand_bps: f64::INFINITY,
            tag: 1,
        },
    );
    // Component 2: flows on link c only.
    let g1 = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pc,
            size_bits: 1e15,
            demand_bps: 41.7 * GBPS,
            tag: 2,
        },
    );
    let g2 = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pc,
            size_bits: 1e15,
            demand_bps: f64::INFINITY,
            tag: 3,
        },
    );
    net.recompute_if_dirty();
    let r1 = net.flow_rate(f1).unwrap();
    let r2 = net.flow_rate(f2).unwrap();
    let s1 = net.flow_rate(g1).unwrap();
    let s2 = net.flow_rate(g2).unwrap();

    // Perturb ONLY component 2, repeatedly.
    let before = net.alloc_scope();
    net.set_link_capacity(c, 48.0 * GBPS);
    net.recompute_if_dirty();
    let g3 = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pc,
            size_bits: 1e15,
            demand_bps: 10.0 * GBPS,
            tag: 4,
        },
    );
    net.recompute_if_dirty();
    net.kill_flow(SimTime::ZERO, g3);
    net.recompute_if_dirty();
    let delta = net.alloc_scope().since(&before);
    assert_eq!(delta.events, 3);
    assert!(
        delta.flows_touched <= 3 * 3,
        "recomputes stayed in component 2: {delta:?}"
    );

    // Component 1 rates: bitwise identical (never rewritten).
    assert_eq!(net.flow_rate(f1).unwrap().to_bits(), r1.to_bits());
    assert_eq!(net.flow_rate(f2).unwrap().to_bits(), r2.to_bits());
    // Component 2 rates changed (capacity dropped, flow churned through).
    assert_ne!(net.flow_rate(g1).unwrap().to_bits(), s1.to_bits());
    assert!(net.flow_rate(g2).unwrap() < s2);

    // Sanity: component 1 is where max-min puts it. f1 is demand-limited
    // at 37.3G; f2 takes the rest of link a.
    assert!((r1 - 37.3 * GBPS).abs() < 1.0);
    assert!((r2 - 62.7 * GBPS).abs() < 1.0);
}

/// A link that joins two previously separate components must merge them:
/// the next recompute after adding a bridging flow touches both sides.
#[test]
fn bridging_flow_merges_components() {
    let mut net = FlowNet::with_allocator(AllocatorKind::Incremental);
    let a = net.add_link(100.0 * GBPS, f64::INFINITY);
    let b = net.add_link(100.0 * GBPS, f64::INFINITY);
    let pa = net.intern_path(&[a]);
    let pb = net.intern_path(&[b]);
    let pab = net.intern_path(&[a, b]);
    let fa = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pa,
            size_bits: 1e15,
            demand_bps: f64::INFINITY,
            tag: 0,
        },
    );
    let fb = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pb,
            size_bits: 1e15,
            demand_bps: f64::INFINITY,
            tag: 1,
        },
    );
    net.recompute_if_dirty();
    assert_eq!(net.flow_rate(fa), Some(100.0 * GBPS));
    assert_eq!(net.flow_rate(fb), Some(100.0 * GBPS));

    let before = net.alloc_scope();
    let bridge = net.start_flow(
        SimTime::ZERO,
        FlowSpec {
            path: pab,
            size_bits: 1e15,
            demand_bps: f64::INFINITY,
            tag: 2,
        },
    );
    net.recompute_if_dirty();
    let delta = net.alloc_scope().since(&before);
    assert_eq!(
        delta.flows_touched, 3,
        "all three flows now share one component"
    );
    assert_eq!(delta.links_touched, 2);
    assert_eq!(net.flow_rate(fa), Some(50.0 * GBPS));
    assert_eq!(net.flow_rate(fb), Some(50.0 * GBPS));
    assert_eq!(net.flow_rate(bridge), Some(50.0 * GBPS));
}

/// Acceptance criterion for the incremental allocator: under realistic
/// churn at 4K concurrent flows (bottleneck components of a few dozen
/// flows, as a training job's collective traffic forms), it must touch at
/// least 5× fewer flows per event than the dense baseline. Mirrors the
/// `allocator` Criterion bench, but as a pass/fail regression.
#[test]
fn churn_scope_is_5x_smaller_than_dense_at_4k_flows() {
    const N: usize = 4096;
    const POD_LINKS: usize = 8;
    let mut means = Vec::new();
    for kind in [AllocatorKind::Dense, AllocatorKind::Incremental] {
        let mut net = FlowNet::with_allocator(kind);
        let nlinks = N / 8;
        let links: Vec<LinkId> = (0..nlinks)
            .map(|_| net.add_link(400.0 * GBPS, f64::INFINITY))
            .collect();
        let ngroups = nlinks / POD_LINKS;
        let path_of = |net: &mut FlowNet, i: usize| {
            let pod = i % ngroups;
            let a = links[pod * POD_LINKS + (i / ngroups) % POD_LINKS];
            let b = links[pod * POD_LINKS + (i * 3 + 1) % POD_LINKS];
            if a == b {
                net.intern_path(&[a])
            } else {
                net.intern_path(&[a, b])
            }
        };
        let mut handles: Vec<FlowHandle> = (0..N)
            .map(|i| {
                let path = path_of(&mut net, i);
                net.start_flow(
                    SimTime::ZERO,
                    FlowSpec {
                        path,
                        size_bits: 1e15,
                        demand_bps: 200.0 * GBPS,
                        tag: i as u64,
                    },
                )
            })
            .collect();
        net.recompute_if_dirty();
        let warm = net.alloc_scope();
        for i in 0..200 {
            let slot = (i * 37) % handles.len();
            net.kill_flow(SimTime::ZERO, handles[slot]);
            net.recompute_if_dirty();
            let path = path_of(&mut net, slot);
            handles[slot] = net.start_flow(
                SimTime::ZERO,
                FlowSpec {
                    path,
                    size_bits: 1e15,
                    demand_bps: 200.0 * GBPS,
                    tag: slot as u64,
                },
            );
            net.recompute_if_dirty();
        }
        let scope = net.alloc_scope().since(&warm);
        means.push(scope.mean_flows_touched());
    }
    let (dense, incr) = (means[0], means[1]);
    assert!(
        dense >= (N - 1) as f64,
        "dense touches every live flow, got {dense}"
    );
    assert!(
        incr * 5.0 <= dense,
        "incremental ({incr} flows/event) is not ≥5× smaller than dense ({dense})"
    );
}

/// Dense and incremental agree through a full simulate-advance lifecycle,
/// not just instantaneous allocations: completions happen at the same
/// times under both allocators.
#[test]
fn completion_times_match_across_allocators() {
    let mut times = Vec::new();
    for kind in [AllocatorKind::Dense, AllocatorKind::Incremental] {
        let mut net = FlowNet::with_allocator(kind);
        let l0 = net.add_link(100.0 * GBPS, f64::INFINITY);
        let l1 = net.add_link(50.0 * GBPS, f64::INFINITY);
        let p01 = net.intern_path(&[l0, l1]);
        let p0 = net.intern_path(&[l0]);
        let p1 = net.intern_path(&[l1]);
        for (path, size, tag) in [
            (p01, 25.0 * GBPS, 0u64),
            (p0, 150.0 * GBPS, 1),
            (p1, 50.0 * GBPS, 2),
        ] {
            net.start_flow(
                SimTime::ZERO,
                FlowSpec {
                    path,
                    size_bits: size,
                    demand_bps: f64::INFINITY,
                    tag,
                },
            );
        }
        let mut done = Vec::new();
        let mut guard = 0;
        while net.flow_count() > 0 {
            let t = net.next_completion().expect("progressing");
            for c in net.advance(t) {
                done.push((c.tag, t.as_nanos()));
            }
            guard += 1;
            assert!(guard < 10, "completion runaway");
        }
        times.push(done);
    }
    assert_eq!(
        times[0], times[1],
        "dense vs incremental completion schedule"
    );
}
