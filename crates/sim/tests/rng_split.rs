//! Property tests for the stateless RNG split API (`split_seed` /
//! `StreamSeed`), which the parallel experiment runner relies on: a cell's
//! stream must depend only on `(root_seed, cell_id)` — never on which
//! worker derived it, in what order, or what was drawn before.

use hpn_sim::{label_hash, split_seed, StreamSeed, Xoshiro256};
use proptest::prelude::*;

/// First `n` draws of the Xoshiro stream for `(root, cell)`.
fn prefix(root: u64, cell: u64, n: usize) -> Vec<u64> {
    let mut rng = StreamSeed::new(root).stream(cell);
    (0..n).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn same_root_and_cell_is_reproducible(root in 0u64..u64::MAX, cell in 0u64..u64::MAX) {
        prop_assert_eq!(split_seed(root, cell), split_seed(root, cell));
        prop_assert_eq!(prefix(root, cell, 16), prefix(root, cell, 16));
        // The convenience wrappers agree with the free function.
        let ss = StreamSeed::new(root);
        prop_assert_eq!(ss.cell_seed(cell), split_seed(root, cell));
        prop_assert_eq!(ss.root(), root);
    }

    #[test]
    fn distinct_cells_give_decorrelated_streams(
        root in 0u64..u64::MAX,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
    ) {
        prop_assume!(a != b);
        // The cell multiplier is odd and the finisher bijective, so
        // distinct cells of one root can never collide.
        prop_assert_ne!(split_seed(root, a), split_seed(root, b));

        // Statistical decorrelation: across 4 × 64 = 256 bits, two
        // independent streams agree on ~128; demand the agreement stays
        // far from "identical" and far from "inverted". A correlated
        // pair (e.g. cell_seed = root + cell without mixing) fails this.
        let (pa, pb) = (prefix(root, a, 4), prefix(root, b, 4));
        let matching: u32 = pa
            .iter()
            .zip(&pb)
            .map(|(x, y)| (x ^ y).count_zeros())
            .sum();
        prop_assert!(
            (64..=192).contains(&matching),
            "streams for cells {} and {} look correlated: {}/256 bits equal",
            a, b, matching
        );
    }

    #[test]
    fn distinct_roots_change_every_cell(root in 0u64..u64::MAX, delta in 1u64..u64::MAX, cell in 0u64..u64::MAX) {
        let other = root.wrapping_add(delta);
        prop_assume!(other != root);
        prop_assert_ne!(split_seed(root, cell), split_seed(other, cell));
    }

    #[test]
    fn split_is_independent_of_draw_order(
        root in 0u64..u64::MAX,
        cells in proptest::collection::vec(0u64..u64::MAX, 2..8),
        interleave in 1usize..20,
    ) {
        // Forward: derive each cell's seed and draw from its stream
        // immediately, polluting any hidden sequential state before the
        // next derivation.
        let forward: Vec<(u64, u64)> = cells
            .iter()
            .map(|&c| {
                let seed = split_seed(root, c);
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let mut last = 0;
                for _ in 0..interleave {
                    last = rng.next_u64();
                }
                (seed, last)
            })
            .collect();
        // Reverse order, with extra unrelated draws in between.
        let mut noise = Xoshiro256::seed_from_u64(root);
        let mut backward: Vec<(u64, u64)> = cells
            .iter()
            .rev()
            .map(|&c| {
                for _ in 0..interleave {
                    noise.next_u64();
                }
                let seed = split_seed(root, c);
                let mut rng = Xoshiro256::seed_from_u64(seed);
                let mut last = 0;
                for _ in 0..interleave {
                    last = rng.next_u64();
                }
                (seed, last)
            })
            .collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn named_cells_are_just_hashed_cells(root in 0u64..u64::MAX, tag in 0u32..u32::MAX) {
        let label = format!("site-{tag}");
        let ss = StreamSeed::new(root);
        prop_assert_eq!(ss.cell_seed_named(&label), ss.cell_seed(label_hash(&label)));
        let mut named = ss.stream_named(&label);
        let mut byid = ss.stream(label_hash(&label));
        for _ in 0..4 {
            prop_assert_eq!(named.next_u64(), byid.next_u64());
        }
    }
}
