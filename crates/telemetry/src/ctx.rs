//! [`SimCtx`] — the explicit per-session context.
//!
//! One value answers the three questions every layer of a simulation used
//! to answer through ambient state:
//!
//! * **Where do events go?** A [`SharedRecorder`] handle (replaces the
//!   removed thread-local ambient recorder `share::install`/`current`).
//! * **Where does randomness come from?** An optional root seed, split
//!   per call site with [`hpn_sim::split_seed`] (replaces the experiment
//!   harness's thread-local `SweepScope`).
//! * **Which rate allocator runs?** An [`AllocatorKind`] (previously read
//!   from the environment deep inside `FlowNet::new`).
//!
//! A `SimCtx` is constructed once per session — by the experiment runner
//! for each cell, by a test for itself — and threaded **explicitly**
//! through every constructor: topology → routing → transport
//! (`ClusterSim::with_ctx`) → collectives → faults → scenario
//! (`Scenario::build_with`) → bench. Nothing about it is thread-local, and
//! every field is `Send`, so a session built from one can migrate to a
//! worker thread (static assertions in the transport and scenario crates
//! hold this invariant).
//!
//! The default context is inert and environment-compatible: null recorder,
//! no root seed (call sites fall back to their fixed per-site seeds), and
//! the allocator the `HPN_ALLOCATOR` variable names. `SimCtx::default()`
//! therefore behaves exactly like the old ambient defaults.

use hpn_sim::{split_seed, AllocatorKind};

use crate::share::SharedRecorder;

/// Explicit per-session context: recorder handle, RNG root, allocator
/// selection. Cheap to clone (the recorder handle is an `Arc`).
#[derive(Clone)]
pub struct SimCtx {
    recorder: SharedRecorder,
    root_seed: Option<u64>,
    allocator: AllocatorKind,
    validate_every: u32,
}

impl Default for SimCtx {
    /// Null recorder, no sweep root, allocator from `HPN_ALLOCATOR`,
    /// surrogate validation cadence from `HPN_SURROGATE_VALIDATE_EVERY`
    /// (default 64) — the exact behaviour sessions got from the old
    /// ambient defaults.
    fn default() -> Self {
        SimCtx {
            recorder: SharedRecorder::null(),
            root_seed: None,
            allocator: AllocatorKind::from_env(),
            validate_every: std::env::var("HPN_SURROGATE_VALIDATE_EVERY")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(64),
        }
    }
}

impl SimCtx {
    /// The inert default context (see [`SimCtx::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the recorder handle.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Set the sweep root seed: [`SimCtx::seed_for`] splits every call
    /// site's seed off this root, so one sweep cell's randomness never
    /// correlates with another's.
    pub fn with_root_seed(mut self, root: u64) -> Self {
        self.root_seed = Some(root);
        self
    }

    /// Pin the rate allocator (instead of the `HPN_ALLOCATOR` default).
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Pin the surrogate allocator's online-validation cadence (validate
    /// every Nth prediction; `0` = never, `1` = always) instead of the
    /// `HPN_SURROGATE_VALIDATE_EVERY` default. Only meaningful when the
    /// allocator is [`AllocatorKind::Surrogate`].
    pub fn with_validate_every(mut self, every: u32) -> Self {
        self.validate_every = every;
        self
    }

    /// The recorder sessions built from this context emit into.
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// The sweep root seed, if any.
    pub fn root_seed(&self) -> Option<u64> {
        self.root_seed
    }

    /// Which rate allocator sessions built from this context run.
    pub fn allocator(&self) -> AllocatorKind {
        self.allocator
    }

    /// The surrogate allocator's online-validation cadence.
    pub fn validate_every(&self) -> u32 {
        self.validate_every
    }

    /// The seed a call site with fixed identity `site` should use: split
    /// off the root when one is set (sweep mode), the site's own value
    /// otherwise (standalone mode, reproducible in isolation).
    pub fn seed_for(&self, site: u64) -> u64 {
        match self.root_seed {
            Some(root) => split_seed(root, site),
            None => site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{JsonlRecorder, SharedBuf};
    use crate::Event;

    #[test]
    fn sim_ctx_is_send_and_clone() {
        fn assert_send<T: Send>() {}
        fn assert_clone<T: Clone>() {}
        assert_send::<SimCtx>();
        assert_clone::<SimCtx>();
    }

    #[test]
    fn default_ctx_is_inert() {
        let ctx = SimCtx::new();
        assert!(!ctx.recorder().enabled());
        assert_eq!(ctx.root_seed(), None);
        // No root: call sites keep their fixed seeds.
        assert_eq!(ctx.seed_for(42), 42);
    }

    #[test]
    fn root_seed_splits_per_site() {
        let ctx = SimCtx::new().with_root_seed(7);
        let (a, b) = (ctx.seed_for(1), ctx.seed_for(2));
        assert_ne!(a, b, "distinct sites get distinct streams");
        assert_eq!(a, split_seed(7, 1), "stateless split, same as the rng fn");
        assert_eq!(
            SimCtx::new().with_root_seed(7).seed_for(1),
            a,
            "pure function of (root, site)"
        );
        assert_ne!(
            SimCtx::new().with_root_seed(8).seed_for(1),
            a,
            "different roots decorrelate the same site"
        );
    }

    #[test]
    fn builders_compose() {
        let buf = SharedBuf::new();
        let ctx = SimCtx::new()
            .with_recorder(SharedRecorder::new(Box::new(JsonlRecorder::new(
                buf.clone(),
            ))))
            .with_root_seed(3)
            .with_allocator(AllocatorKind::Parallel);
        assert!(ctx.recorder().enabled());
        assert_eq!(ctx.allocator(), AllocatorKind::Parallel);
        let clone = ctx.clone();
        clone
            .recorder()
            .emit(|| Event::SimStart { label: "c".into() });
        ctx.recorder().flush();
        assert!(
            buf.text().contains("sim_start"),
            "clones share one recorder sink"
        );
    }
}
