//! Typed telemetry events with simulated-time stamps.
//!
//! Every event carries the simulation clock (`t_ns`, nanoseconds) of the
//! run segment it belongs to. A run segment starts with [`Event::SimStart`]
//! — experiments routinely build several independent `ClusterSim`s (e.g.
//! Clos vs dual-plane ablations), each starting back at t=0, so sinks that
//! enforce time monotonicity reset at each `SimStart`.

use hpn_sim::SimTime;

/// One telemetry event. Integer ids are the simulator's own handles:
/// `flow` is the [`hpn_sim::FlowHandle`] counter, `link` a
/// [`hpn_sim::LinkId`] index into the fluid net, `rlink` a routing-layer
/// [`hpn_topology` `LinkIdx`] index, `conn`/`job` the transport/collective
/// indices.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A new simulation (run segment) attached to the recorder. Resets the
    /// monotonic-clock expectation of sinks.
    SimStart {
        /// Label identifying the segment (e.g. the experiment id).
        label: String,
    },
    /// A flow was injected into the fluid net.
    FlowAdd {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Flow handle.
        flow: u64,
        /// Number of links on the flow's path.
        path_links: u32,
        /// Flow size in bits.
        size_bits: f64,
    },
    /// A flow left the fluid net.
    FlowRemove {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Flow handle.
        flow: u64,
        /// True when the flow completed; false when it was killed (reroute,
        /// job teardown).
        completed: bool,
    },
    /// The rate allocator recomputed fair shares. Scope counters are the
    /// *delta* of this recompute: how many flows/links it touched and how
    /// many flows were active (the dense baseline cost).
    RateRecompute {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Flows whose rate was recomputed.
        flows_touched: u64,
        /// Links whose allocation state was recomputed.
        links_touched: u64,
        /// Flows active at the recompute.
        flows_active: u64,
    },
    /// A fluid-net link changed physical state.
    LinkState {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Fluid-net link index.
        link: u32,
        /// New physical state.
        up: bool,
    },
    /// The routing view of a link converged to a new state (BGP withdrawal
    /// propagated / route restored).
    RouteConverge {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Routing-layer link index.
        rlink: u32,
        /// New routed state.
        up: bool,
    },
    /// A RePaC disjoint-path search ran (connection establishment or route
    /// refresh).
    PathSearch {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Candidate routes evaluated.
        candidates: u64,
        /// Pairwise-disjoint paths selected.
        found: u32,
    },
    /// An in-flight message switched paths after a failure (`rerouted`) or
    /// found no healthy path and stalled.
    PathSwitch {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Transport connection index.
        conn: u32,
        /// True: transparently re-issued over a surviving path. False:
        /// stalled awaiting repair.
        rerouted: bool,
    },
    /// Periodic utilization/queue sample of one link.
    LinkSample {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Fluid-net link index.
        link: u32,
        /// Allocated rate over nominal capacity, in `[0, 1]`.
        utilization: f64,
        /// Queue occupancy in bits.
        queue_bits: f64,
        /// Effective link capacity in bits/s (zero when the link is down);
        /// turns `queue_bits` into a queueing *delay* downstream.
        capacity_bps: f64,
    },
    /// A collective step (one op-graph job) completed.
    CollectiveStep {
        /// Simulated time in nanoseconds (completion instant).
        t_ns: u64,
        /// Job index within its runner.
        job: u32,
        /// Wall-clock duration of the step in nanoseconds.
        dur_ns: u64,
    },
    /// A fault was injected.
    FaultInject {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Fault class: `"link_fail"`, `"link_flap"` or `"tor_crash"`.
        kind: &'static str,
        /// Failed element: routing link index or ToR node id.
        target: u32,
    },
    /// A previously injected fault was repaired.
    FaultRepair {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Repair class: `"cable"` or `"tor"`.
        kind: &'static str,
        /// Repaired element: routing link index or ToR node id.
        target: u32,
    },
    /// The surrogate allocator's cache activity during one rate recompute
    /// (deltas of that recompute). Named for the miss counter it carries;
    /// fired whenever the surrogate served lookups, hits included, so the
    /// registry can account hit/miss/validation rates.
    SurrogateMiss {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Component predictions served in this recompute.
        lookups: u64,
        /// Predictions that missed the cache (analytic-surrogate solves).
        misses: u64,
        /// Predictions re-solved exactly for online validation.
        validations: u64,
    },
    /// An online validation caught the surrogate disagreeing bitwise with
    /// the exact solver; the poisoned cache entry was evicted and the
    /// exact rates used.
    SurrogateMismatch {
        /// Simulated time in nanoseconds.
        t_ns: u64,
        /// Mismatching validations in this recompute.
        mismatches: u64,
    },
}

impl Event {
    /// The event's sim-time stamp in nanoseconds. `SimStart` marks the
    /// beginning of a fresh clock and reports 0.
    pub fn t_ns(&self) -> u64 {
        match *self {
            Event::SimStart { .. } => 0,
            Event::FlowAdd { t_ns, .. }
            | Event::FlowRemove { t_ns, .. }
            | Event::RateRecompute { t_ns, .. }
            | Event::LinkState { t_ns, .. }
            | Event::RouteConverge { t_ns, .. }
            | Event::PathSearch { t_ns, .. }
            | Event::PathSwitch { t_ns, .. }
            | Event::LinkSample { t_ns, .. }
            | Event::CollectiveStep { t_ns, .. }
            | Event::FaultInject { t_ns, .. }
            | Event::FaultRepair { t_ns, .. }
            | Event::SurrogateMiss { t_ns, .. }
            | Event::SurrogateMismatch { t_ns, .. } => t_ns,
        }
    }

    /// The event's sim-time stamp as a [`SimTime`].
    pub fn time(&self) -> SimTime {
        SimTime::from_nanos(self.t_ns())
    }

    /// Stable snake_case tag used as the JSONL `ev` field and as the
    /// registry's event-count key.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SimStart { .. } => "sim_start",
            Event::FlowAdd { .. } => "flow_add",
            Event::FlowRemove { .. } => "flow_remove",
            Event::RateRecompute { .. } => "rate_recompute",
            Event::LinkState { .. } => "link_state",
            Event::RouteConverge { .. } => "route_converge",
            Event::PathSearch { .. } => "path_search",
            Event::PathSwitch { .. } => "path_switch",
            Event::LinkSample { .. } => "link_sample",
            Event::CollectiveStep { .. } => "collective_step",
            Event::FaultInject { .. } => "fault_inject",
            Event::FaultRepair { .. } => "fault_repair",
            Event::SurrogateMiss { .. } => "surrogate_miss",
            Event::SurrogateMismatch { .. } => "surrogate_mismatch",
        }
    }

    /// One JSON object (no trailing newline) — the JSONL wire format.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ev\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::SimStart { label } => {
                s.push_str(",\"label\":");
                s.push_str(&json_str(label));
            }
            Event::FlowAdd {
                t_ns,
                flow,
                path_links,
                size_bits,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(
                    ",\"flow\":{flow},\"path_links\":{path_links},\"size_bits\":{}",
                    json_num(*size_bits)
                ));
            }
            Event::FlowRemove {
                t_ns,
                flow,
                completed,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"flow\":{flow},\"completed\":{completed}"));
            }
            Event::RateRecompute {
                t_ns,
                flows_touched,
                links_touched,
                flows_active,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(
                    ",\"flows_touched\":{flows_touched},\"links_touched\":{links_touched},\"flows_active\":{flows_active}"
                ));
            }
            Event::LinkState { t_ns, link, up } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"link\":{link},\"up\":{up}"));
            }
            Event::RouteConverge { t_ns, rlink, up } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"rlink\":{rlink},\"up\":{up}"));
            }
            Event::PathSearch {
                t_ns,
                candidates,
                found,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"candidates\":{candidates},\"found\":{found}"));
            }
            Event::PathSwitch {
                t_ns,
                conn,
                rerouted,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"conn\":{conn},\"rerouted\":{rerouted}"));
            }
            Event::LinkSample {
                t_ns,
                link,
                utilization,
                queue_bits,
                capacity_bps,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(
                    ",\"link\":{link},\"utilization\":{},\"queue_bits\":{},\"capacity_bps\":{}",
                    json_num(*utilization),
                    json_num(*queue_bits),
                    json_num(*capacity_bps)
                ));
            }
            Event::CollectiveStep { t_ns, job, dur_ns } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"job\":{job},\"dur_ns\":{dur_ns}"));
            }
            Event::FaultInject { t_ns, kind, target }
            | Event::FaultRepair { t_ns, kind, target } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"kind\":\"{kind}\",\"target\":{target}"));
            }
            Event::SurrogateMiss {
                t_ns,
                lookups,
                misses,
                validations,
            } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(
                    ",\"lookups\":{lookups},\"misses\":{misses},\"validations\":{validations}"
                ));
            }
            Event::SurrogateMismatch { t_ns, mismatches } => {
                push_t(&mut s, *t_ns);
                s.push_str(&format!(",\"mismatches\":{mismatches}"));
            }
        }
        s.push('}');
        s
    }
}

fn push_t(s: &mut String, t_ns: u64) {
    s.push_str(&format!(",\"t_ns\":{t_ns}"));
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (`{}` on f64 round-trips; non-finite
/// values have no JSON representation and become null).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let ev = Event::FlowAdd {
            t_ns: 5,
            flow: 1,
            path_links: 3,
            size_bits: 8e9,
        };
        assert_eq!(ev.kind(), "flow_add");
        assert_eq!(ev.t_ns(), 5);
        assert_eq!(ev.time(), SimTime::from_nanos(5));
    }

    #[test]
    fn json_lines_are_self_describing() {
        let ev = Event::RateRecompute {
            t_ns: 1_000_000_000,
            flows_touched: 12,
            links_touched: 4,
            flows_active: 64,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"rate_recompute\",\"t_ns\":1000000000,\"flows_touched\":12,\
             \"links_touched\":4,\"flows_active\":64}"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let ev = Event::SimStart {
            label: "a\"b\\c\nd\u{1}".into(),
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"sim_start\",\"label\":\"a\\\"b\\\\c\\nd\\u0001\"}"
        );
    }

    #[test]
    fn non_finite_samples_become_null() {
        let ev = Event::LinkSample {
            t_ns: 1,
            link: 0,
            utilization: f64::NAN,
            queue_bits: 0.5,
            capacity_bps: 4e11,
        };
        assert!(ev.to_json().contains("\"utilization\":null"));
        assert!(ev.to_json().contains("\"queue_bits\":0.5"));
        assert!(ev.to_json().contains("\"capacity_bps\":400000000000"));
    }
}
