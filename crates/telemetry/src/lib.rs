//! # hpn-telemetry — simulator-wide observability
//!
//! Typed event recording, metric registries and deterministic run
//! manifests for the HPN reproduction. The design splits three concerns:
//!
//! * **Events** ([`Event`]) — every observable simulator transition
//!   (flow add/remove, rate recompute, link/route state, path search and
//!   switch, utilization samples, collective step completion, fault
//!   inject/repair), each stamped with simulated time.
//! * **Recorders** ([`Recorder`]) — sinks consuming the event stream.
//!   [`NullRecorder`] is the default and reports `enabled() == false`, so
//!   instrumentation sites skip event construction entirely: telemetry off
//!   costs one bool check, not a format-and-discard. [`JsonlRecorder`]
//!   persists one JSON object per line and enforces sim-time monotonicity
//!   within each run segment; [`Registry`] aggregates counters and
//!   histograms in memory.
//! * **Manifests** ([`RunManifest`]) — a deterministic record of a run's
//!   identity (seed, allocator, topology parameters, `git describe`) and a
//!   SHA-256 fingerprint per emitted figure series, written alongside every
//!   experiment's output. CI diffs the fingerprints against a checked-in
//!   golden set to gate on figure drift.
//!
//! The recorder reaches a simulation through an explicit per-session
//! context: a [`SimCtx`] bundles the recorder handle, the RNG root seed
//! and the rate-allocator selection, and is passed to every session
//! constructor (`ClusterSim::with_ctx`, `Scenario::build_with`). All of
//! its parts are `Send`, so sessions migrate freely across worker
//! threads. The former thread-local ambient recorder (`share::install` /
//! `share::current` / `share::RecorderScope`) has been removed after its
//! one-release deprecation window.
//!
//! Layering: `hpn-sim` cannot depend on this crate, so it exposes the
//! [`hpn_sim::NetProbe`] callback trait instead; [`SharedRecorder::net_probe`]
//! adapts a recorder into a probe. Higher layers (routing, transport,
//! collectives, faults, the bench harness) depend on this crate directly
//! and emit through the recorder their `SimCtx` carries.

#![warn(missing_docs)]

pub mod ctx;
pub mod event;
pub mod manifest;
pub mod recorder;
pub mod registry;
pub mod segment;
pub mod sha256;
pub mod share;

pub use ctx::SimCtx;
pub use event::Event;
pub use manifest::{flat_map_json, git_describe, parse_flat_map, RunManifest};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, SharedBuf};
pub use registry::{
    FlowMetrics, LatencyMetrics, LinkMetrics, RecomputeMetrics, Registry, SurrogateMetrics,
};
pub use segment::{merge_segments, replay, EventLog, EventStream};
pub use sha256::{hex_digest, Sha256};
pub use share::SharedRecorder;
