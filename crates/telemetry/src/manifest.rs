//! Deterministic run manifests.
//!
//! Every experiment run writes a manifest next to its output: the seed,
//! the rate allocator, topology/scale parameters, the source revision
//! (`git describe`) and a SHA-256 fingerprint of each emitted figure
//! series. CI regenerates the figures and diffs the fingerprints against
//! the checked-in golden set — byte-level regression gating without
//! storing the series themselves.
//!
//! The manifest is deliberately *deterministic*: no wall-clock timestamp,
//! keys serialized in sorted order, so two runs of the same code + seed
//! produce byte-identical manifests.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::event::{json_str, Event};
use crate::registry::Registry;

/// A run manifest: identity, parameters and per-figure fingerprints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunManifest {
    /// RNG seed the run used.
    pub seed: u64,
    /// Rate allocator label (`dense` / `incremental`).
    pub allocator: String,
    /// Experiment scale label (`quick` / `full`).
    pub scale: String,
    /// Source revision, from [`git_describe`].
    pub git: String,
    /// Topology and harness parameters (sorted map, free-form strings).
    pub params: BTreeMap<String, String>,
    /// Figure id → SHA-256 (lowercase hex) of its canonical series bytes.
    pub figures: BTreeMap<String, String>,
    /// Optional telemetry summary per figure (from [`Registry::summary_json`],
    /// stored as a raw JSON string).
    pub telemetry: BTreeMap<String, String>,
}

impl RunManifest {
    /// A manifest for a run with the given identity. `git` is captured via
    /// [`git_describe`].
    pub fn new(seed: u64, allocator: &str, scale: &str) -> Self {
        RunManifest {
            seed,
            allocator: allocator.to_string(),
            scale: scale.to_string(),
            git: git_describe(),
            ..Self::default()
        }
    }

    /// Record a harness/topology parameter.
    pub fn set_param(&mut self, key: &str, value: impl ToString) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Record a figure's series fingerprint.
    pub fn record_figure(&mut self, id: &str, sha256_hex: &str) {
        self.figures.insert(id.to_string(), sha256_hex.to_string());
    }

    /// Attach a figure's telemetry summary (a raw JSON object string, e.g.
    /// from [`Registry::summary_json`]).
    pub fn record_telemetry(&mut self, id: &str, summary: &Registry) {
        self.telemetry
            .insert(id.to_string(), summary.summary_json());
    }

    /// Serialize as pretty-stable JSON (sorted keys, no timestamps).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"allocator\": {},\n",
            json_str(&self.allocator)
        ));
        s.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        s.push_str(&format!("  \"git\": {},\n", json_str(&self.git)));
        s.push_str("  \"params\": ");
        s.push_str(&flat_map_json(&self.params, 2));
        s.push_str(",\n  \"figures\": ");
        s.push_str(&flat_map_json(&self.figures, 2));
        if self.telemetry.is_empty() {
            s.push_str("\n}\n");
        } else {
            s.push_str(",\n  \"telemetry\": {\n");
            for (i, (k, v)) in self.telemetry.iter().enumerate() {
                if i > 0 {
                    s.push_str(",\n");
                }
                // v is already a JSON object.
                s.push_str(&format!("    {}: {v}", json_str(k)));
            }
            s.push_str("\n  }\n}\n");
        }
        s
    }

    /// Write the manifest (and nothing else) to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// The events a recorder should see at run start, so a JSONL stream is
    /// self-describing: one `SimStart` with the run identity as label.
    pub fn start_event(&self, experiment: &str) -> Event {
        Event::SimStart {
            label: format!(
                "{experiment} seed={} allocator={} scale={}",
                self.seed, self.allocator, self.scale
            ),
        }
    }
}

/// Serialize a flat string map as a sorted JSON object, indented by
/// `indent` spaces per level.
pub fn flat_map_json(map: &BTreeMap<String, String>, indent: usize) -> String {
    if map.is_empty() {
        return "{}".to_string();
    }
    let pad = " ".repeat(indent);
    let mut s = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!("{pad}{pad}{}: {}", json_str(k), json_str(v)));
    }
    s.push_str(&format!("\n{pad}}}"));
    s
}

/// Parse a flat JSON object of string keys to string values — exactly the
/// shape [`flat_map_json`] emits and the golden figure-hash file uses.
/// Nested objects, arrays and non-string values are rejected with a
/// description of where parsing stopped.
pub fn parse_flat_map(src: &str) -> Result<BTreeMap<String, String>, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let val = p.string()?;
        if map.insert(key.clone(), val).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => {
                return Err(format!(
                    "expected ',' or '}}', got {other:?} at byte {}",
                    p.pos
                ))
            }
        }
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected {:?}, got {other:?} at byte {}",
                want as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble UTF-8: find the full char at pos-1.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("bad UTF-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable. Runs the subprocess at
/// call time; failures degrade to the fallback rather than erroring, so
/// manifests still work from tarballs and sandboxes.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest {
            seed: 42,
            allocator: "incremental".into(),
            scale: "quick".into(),
            git: "abc1234".into(),
            ..RunManifest::default()
        };
        m.set_param("segments", 4);
        m.set_param("fabric", "hpn");
        m.record_figure("fig13", "00aa");
        m.record_figure("fig19", "bb11");
        m
    }

    #[test]
    fn manifest_json_round_trips_through_flat_parser() {
        let m = sample();
        let json = m.to_json();
        // The figures sub-object must parse with the golden-file parser.
        let figs_start = json.find("\"figures\": ").expect("figures key") + 11;
        let figs = &json[figs_start..json.rfind('}').expect("closing")];
        let figs = &figs[..figs.rfind('}').expect("figures closing") + 1];
        let parsed = parse_flat_map(figs).expect("parse figures");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["fig13"], "00aa");
        assert_eq!(parsed["fig19"], "bb11");
    }

    #[test]
    fn manifest_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn start_event_labels_the_run() {
        let ev = sample().start_event("fig13");
        assert_eq!(
            ev,
            Event::SimStart {
                label: "fig13 seed=42 allocator=incremental scale=quick".into()
            }
        );
    }

    #[test]
    fn flat_parser_accepts_escapes_and_unicode() {
        let m = parse_flat_map(" { \"a\\n\" : \"b\\u0041\\\\\" , \"ü\" : \"v\" } ").expect("parse");
        assert_eq!(m["a\n"], "bA\\");
        assert_eq!(m["ü"], "v");
    }

    #[test]
    fn flat_parser_rejects_nesting_and_duplicates() {
        assert!(parse_flat_map("{\"a\":{}}").is_err());
        assert!(parse_flat_map("{\"a\":\"1\",\"a\":\"2\"}").is_err());
        assert!(parse_flat_map("{\"a\":\"1\"").is_err());
        assert!(parse_flat_map("").is_err());
        assert_eq!(parse_flat_map("{}").expect("empty object"), BTreeMap::new());
    }

    #[test]
    fn round_trip_map() {
        let mut map = BTreeMap::new();
        map.insert("fig13".to_string(), "deadbeef".to_string());
        map.insert("weird \"key\"".to_string(), "line\nbreak".to_string());
        let json = flat_map_json(&map, 2);
        assert_eq!(parse_flat_map(&json).expect("round trip"), map);
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
