//! The [`Recorder`] trait and its two stock sinks.
//!
//! [`NullRecorder`] is the default: it reports `enabled() == false`, so
//! instrumentation sites skip event construction entirely — recording off
//! means zero work on the simulator's hot paths, not cheap work.
//! [`JsonlRecorder`] appends one JSON object per event to any
//! [`std::io::Write`] sink and enforces sim-time monotonicity within each
//! run segment (see [`Event::SimStart`]).

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A telemetry sink.
///
/// `Send` is a supertrait: recorders live inside a
/// [`SharedRecorder`](crate::SharedRecorder) handle, which sessions carry
/// across threads (experiment cells run on a worker pool), so every sink
/// must be movable with them.
pub trait Recorder: Send {
    /// Whether instrumentation sites should bother constructing events.
    /// Sites must treat `false` as "do nothing at all".
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&mut self, ev: &Event);

    /// Flush any buffered output (no-op for most sinks).
    fn flush(&mut self) {}
}

/// The zero-cost disabled sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &Event) {}
}

/// JSON-lines sink: one event per line, in arrival order.
///
/// # Panics
/// `record` panics if an event's sim-time stamp goes backwards within a run
/// segment — the simulator clock is monotonic, so a backwards stamp means
/// an instrumentation bug, and silently reordered telemetry is worse than a
/// loud failure.
pub struct JsonlRecorder<W: Write + Send> {
    out: W,
    last_t_ns: u64,
    events: u64,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Record into `out`.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out,
            last_t_ns: 0,
            events: 0,
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Finish and hand back the sink.
    pub fn into_inner(mut self) -> W {
        self.out.flush().expect("flush telemetry sink");
        self.out
    }
}

impl JsonlRecorder<std::io::BufWriter<std::fs::File>> {
    /// Record into a freshly created file.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlRecorder::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&mut self, ev: &Event) {
        if matches!(ev, Event::SimStart { .. }) {
            self.last_t_ns = 0;
        } else {
            let t = ev.t_ns();
            assert!(
                t >= self.last_t_ns,
                "telemetry time went backwards: {} < {} at {:?}",
                t,
                self.last_t_ns,
                ev
            );
            self.last_t_ns = t;
        }
        self.events += 1;
        let line = ev.to_json();
        self.out
            .write_all(line.as_bytes())
            .expect("write telemetry");
        self.out.write_all(b"\n").expect("write telemetry");
    }

    fn flush(&mut self) {
        self.out.flush().expect("flush telemetry");
    }
}

/// A clonable in-memory byte sink, for tests and for callers that want to
/// inspect the JSONL stream after the recorder has been boxed away.
/// Clones share one buffer; the handle is `Send` (`Arc<Mutex<...>>`) so a
/// recorder built on it can travel with its session across threads.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().expect("shared buffer").clone()
    }

    /// The buffer as UTF-8 (telemetry JSONL is always valid UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8(self.bytes()).expect("JSONL is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("shared buffer").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_at(t_ns: u64) -> Event {
        Event::LinkState {
            t_ns,
            link: 0,
            up: true,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(&ev_at(1)); // no-op, no panic
    }

    #[test]
    fn jsonl_preserves_event_order() {
        let buf = SharedBuf::new();
        let mut r = JsonlRecorder::new(buf.clone());
        r.record(&Event::SimStart { label: "a".into() });
        r.record(&ev_at(5));
        r.record(&ev_at(5)); // equal stamps are fine (same-instant events)
        r.record(&ev_at(9));
        assert_eq!(r.events(), 4);
        let lines: Vec<String> = buf.text().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sim_start"));
        assert!(lines[1].contains("\"t_ns\":5"));
        assert!(lines[3].contains("\"t_ns\":9"));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn jsonl_rejects_backwards_time() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(&ev_at(10));
        r.record(&ev_at(9));
    }

    #[test]
    fn sim_start_resets_the_clock() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(&ev_at(10));
        r.record(&Event::SimStart { label: "b".into() });
        r.record(&ev_at(1)); // new segment: earlier stamp is legal
        assert_eq!(r.events(), 3);
    }

    #[test]
    fn jsonl_escapes_labels() {
        let buf = SharedBuf::new();
        let mut r = JsonlRecorder::new(buf.clone());
        r.record(&Event::SimStart {
            label: "quote\" backslash\\ newline\n".into(),
        });
        let text = buf.text();
        assert!(text.contains("quote\\\" backslash\\\\ newline\\n"));
        assert_eq!(text.lines().count(), 1, "escaped newline stays on one line");
    }
}
