//! Per-link / per-flow metric registries.
//!
//! The [`Registry`] aggregates the event stream into counters and
//! fixed-bin [`Histogram`]s (from `hpn-sim`'s stats module), with
//! [`Ecdf`] snapshots for the distribution views experiments report.
//! It implements [`Recorder`], so it can sit directly behind the shared
//! handle and aggregate while (or instead of) a JSONL sink persists.

use std::collections::BTreeMap;

use hpn_sim::stats::{Ecdf, Histogram};
use hpn_sim::QuantileSketch;

use crate::event::{json_num, json_str, Event};
use crate::recorder::Recorder;

/// Cap on retained raw samples per distribution; beyond it new samples are
/// still counted but not retained (the histograms keep full fidelity).
const MAX_RAW_SAMPLES: usize = 1 << 20;

/// Aggregated per-link counters and distributions.
#[derive(Clone, Debug)]
pub struct LinkMetrics {
    /// Utilization samples observed via [`Event::LinkSample`].
    pub samples: u64,
    /// Histogram of utilization in `[0, 1)` (20 bins of 5%).
    pub utilization: Histogram,
    /// Peak queue occupancy seen, in bits.
    pub peak_queue_bits: f64,
    /// This link's queueing-delay distribution (`queue_bits /
    /// capacity_bps`, seconds) — the per-link attribution of the
    /// aggregate [`LatencyMetrics::queue_delay`] sketch, recorded from the
    /// same samples.
    pub queue_delay: QuantileSketch,
    /// Mean utilization accumulator.
    util_sum: f64,
    /// Physical up/down transitions.
    pub state_changes: u64,
}

impl Default for LinkMetrics {
    fn default() -> Self {
        LinkMetrics {
            samples: 0,
            utilization: Histogram::new(0.0, 1.0, 20),
            peak_queue_bits: 0.0,
            queue_delay: QuantileSketch::default(),
            util_sum: 0.0,
            state_changes: 0,
        }
    }
}

impl LinkMetrics {
    /// Mean of observed utilization samples (0.0 before any sample).
    pub fn mean_utilization(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.util_sum / self.samples as f64
        }
    }
}

/// Aggregated flow-population counters and distributions.
#[derive(Clone, Debug, Default)]
pub struct FlowMetrics {
    /// Flows injected.
    pub added: u64,
    /// Flows that ran to completion.
    pub completed: u64,
    /// Flows killed before completion (reroutes, teardown).
    pub killed: u64,
    /// Retained flow sizes in bits (capped at [`MAX_RAW_SAMPLES`]).
    sizes: Vec<f64>,
}

impl FlowMetrics {
    /// ECDF of flow sizes in bits.
    pub fn size_ecdf(&self) -> Ecdf {
        Ecdf::from_samples(self.sizes.clone())
    }
}

/// Aggregated recompute-scope counters (the telemetry view of
/// [`hpn_sim::RecomputeScope`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecomputeMetrics {
    /// Recompute events.
    pub events: u64,
    /// Cumulative flows touched.
    pub flows_touched: u64,
    /// Cumulative links touched.
    pub links_touched: u64,
    /// Cumulative active flows at each event.
    pub flows_active: u64,
}

/// Aggregated surrogate-allocator cache counters (the telemetry view of
/// [`Event::SurrogateMiss`] / [`Event::SurrogateMismatch`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SurrogateMetrics {
    /// Component predictions served by the surrogate allocator.
    pub lookups: u64,
    /// Predictions that missed the memo cache.
    pub misses: u64,
    /// Predictions re-solved exactly for online validation.
    pub validations: u64,
    /// Validations where the surrogate disagreed bitwise with the exact
    /// solver (each one evicted a cache entry and fell back to exact).
    pub mismatches: u64,
}

impl SurrogateMetrics {
    /// Predictions served straight from the memo cache.
    pub fn hits(&self) -> u64 {
        self.lookups.saturating_sub(self.misses)
    }

    /// Fraction of lookups served from the cache (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups as f64
        }
    }

    /// Fraction of lookups re-solved exactly (0.0 before any lookup).
    pub fn validation_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.validations as f64 / self.lookups as f64
        }
    }
}

/// Streaming latency tails: per-flow FCT and per-link queueing delay,
/// both in seconds, in mergeable [`QuantileSketch`]es (±1% relative
/// error, constant memory — see [`hpn_sim::sketch`]).
#[derive(Clone, Debug, Default)]
pub struct LatencyMetrics {
    /// Flow completion times of *completed* flows, from matching
    /// `FlowAdd`/`FlowRemove{completed: true}` pairs.
    pub fct: QuantileSketch,
    /// Per-link queueing delay (`queue_bits / capacity_bps`) from
    /// `LinkSample` events; samples on down links are skipped.
    pub queue_delay: QuantileSketch,
    /// Flow → `FlowAdd` timestamp, awaiting the matching remove. Flow ids
    /// restart at each `SimStart` (every segment owns its clock and its
    /// fluid net), so the map is cleared there.
    pending: BTreeMap<u64, u64>,
}

/// The registry: event counts plus per-link and per-flow aggregates.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counts: BTreeMap<&'static str, u64>,
    links: BTreeMap<u32, LinkMetrics>,
    flows: FlowMetrics,
    recompute: RecomputeMetrics,
    surrogate: SurrogateMetrics,
    latency: LatencyMetrics,
    /// Collective step durations in seconds (capped).
    step_durs: Vec<f64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event into the aggregates.
    pub fn observe(&mut self, ev: &Event) {
        *self.counts.entry(ev.kind()).or_insert(0) += 1;
        match *ev {
            Event::SimStart { .. } => {
                // A new segment restarts flow ids at 0; in-flight flows of
                // the previous segment can never complete.
                self.latency.pending.clear();
            }
            Event::FlowAdd {
                t_ns,
                flow,
                size_bits,
                ..
            } => {
                self.flows.added += 1;
                if self.flows.sizes.len() < MAX_RAW_SAMPLES {
                    self.flows.sizes.push(size_bits);
                }
                self.latency.pending.insert(flow, t_ns);
            }
            Event::FlowRemove {
                t_ns,
                flow,
                completed,
            } => {
                let start = self.latency.pending.remove(&flow);
                if completed {
                    self.flows.completed += 1;
                    if let Some(start) = start {
                        self.latency
                            .fct
                            .record(t_ns.saturating_sub(start) as f64 / 1e9);
                    }
                } else {
                    self.flows.killed += 1;
                }
            }
            Event::RateRecompute {
                flows_touched,
                links_touched,
                flows_active,
                ..
            } => {
                self.recompute.events += 1;
                self.recompute.flows_touched += flows_touched;
                self.recompute.links_touched += links_touched;
                self.recompute.flows_active += flows_active;
            }
            Event::LinkState { link, .. } => {
                self.links.entry(link).or_default().state_changes += 1;
            }
            Event::SurrogateMiss {
                lookups,
                misses,
                validations,
                ..
            } => {
                self.surrogate.lookups += lookups;
                self.surrogate.misses += misses;
                self.surrogate.validations += validations;
            }
            Event::SurrogateMismatch { mismatches, .. } => {
                self.surrogate.mismatches += mismatches;
            }
            Event::LinkSample {
                link,
                utilization,
                queue_bits,
                capacity_bps,
                ..
            } => {
                let m = self.links.entry(link).or_default();
                m.samples += 1;
                m.util_sum += utilization;
                m.utilization.record(utilization.clamp(0.0, 1.0));
                m.peak_queue_bits = m.peak_queue_bits.max(queue_bits);
                if capacity_bps > 0.0 {
                    let delay = queue_bits / capacity_bps;
                    m.queue_delay.record(delay);
                    self.latency.queue_delay.record(delay);
                }
            }
            Event::CollectiveStep { dur_ns, .. } if self.step_durs.len() < MAX_RAW_SAMPLES => {
                self.step_durs.push(dur_ns as f64 / 1e9);
            }
            _ => {}
        }
    }

    /// Fold another registry's aggregates into this one.
    ///
    /// Merging is the reduction step of a parallel run: each worker
    /// aggregates its own cells into a private registry, and the
    /// coordinator merges them **in plan order**. Counters, histograms and
    /// peaks are order-independent; the retained raw-sample vectors
    /// (flow sizes, step durations) are concatenated in merge order under
    /// the same `MAX_RAW_SAMPLES` cap, so a plan-order merge retains
    /// exactly the samples a sequential run would have.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (&link, m) in &other.links {
            let mine = self.links.entry(link).or_default();
            mine.samples += m.samples;
            mine.util_sum += m.util_sum;
            mine.utilization.merge(&m.utilization);
            mine.peak_queue_bits = mine.peak_queue_bits.max(m.peak_queue_bits);
            mine.queue_delay.merge(&m.queue_delay);
            mine.state_changes += m.state_changes;
        }
        self.flows.added += other.flows.added;
        self.flows.completed += other.flows.completed;
        self.flows.killed += other.flows.killed;
        // Sketches merge exactly (bucket addition). Pending FlowAdds are
        // per-cell bookkeeping: a cell's unmatched flows were still in
        // flight when its last segment ended, so they contribute no FCT
        // either way and are dropped.
        self.latency.fct.merge(&other.latency.fct);
        self.latency.queue_delay.merge(&other.latency.queue_delay);
        let room = MAX_RAW_SAMPLES.saturating_sub(self.flows.sizes.len());
        self.flows
            .sizes
            .extend(other.flows.sizes.iter().take(room).copied());
        self.recompute.events += other.recompute.events;
        self.recompute.flows_touched += other.recompute.flows_touched;
        self.recompute.links_touched += other.recompute.links_touched;
        self.recompute.flows_active += other.recompute.flows_active;
        self.surrogate.lookups += other.surrogate.lookups;
        self.surrogate.misses += other.surrogate.misses;
        self.surrogate.validations += other.surrogate.validations;
        self.surrogate.mismatches += other.surrogate.mismatches;
        let room = MAX_RAW_SAMPLES.saturating_sub(self.step_durs.len());
        self.step_durs
            .extend(other.step_durs.iter().take(room).copied());
    }

    /// Count of events seen for a kind tag (see [`Event::kind`]).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// All `(kind, count)` pairs in lexicographic order.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Per-link aggregates for a fluid-net link, if it ever appeared.
    pub fn link(&self, link: u32) -> Option<&LinkMetrics> {
        self.links.get(&link)
    }

    /// Number of distinct links observed.
    pub fn links_observed(&self) -> usize {
        self.links.len()
    }

    /// Flow-population aggregates.
    pub fn flows(&self) -> &FlowMetrics {
        &self.flows
    }

    /// Recompute-scope aggregates.
    pub fn recompute(&self) -> RecomputeMetrics {
        self.recompute
    }

    /// Surrogate-allocator cache aggregates (all zero unless the run
    /// used [`hpn_sim::SurrogateMaxMin`]).
    pub fn surrogate(&self) -> SurrogateMetrics {
        self.surrogate
    }

    /// ECDF of collective step durations (seconds).
    pub fn step_duration_ecdf(&self) -> Ecdf {
        Ecdf::from_samples(self.step_durs.clone())
    }

    /// Latency-tail aggregates (FCT and queue-delay sketches).
    pub fn latency(&self) -> &LatencyMetrics {
        &self.latency
    }

    /// The latency-tail summary alone, as deterministic JSON — the bytes
    /// the CI latency gate fingerprints. Quantiles come from integer
    /// bucket walks, so any plan-order merge grouping yields identical
    /// output (same guarantee as [`Registry::summary_json`]).
    ///
    /// Alongside the aggregate sketches, `queue_delay_links` attributes
    /// the queueing tail to links: the worst links by queue-delay p99
    /// (ties broken by link id), capped at
    /// [`Registry::QUEUE_DELAY_LINKS`] entries so full-scale manifests
    /// stay small. Links whose samples never saw queue are omitted.
    pub fn latency_summary_json(&self) -> String {
        format!(
            "{{\"fct\":{},\"queue_delay\":{},\"queue_delay_links\":{}}}",
            sketch_summary_json(&self.latency.fct),
            sketch_summary_json(&self.latency.queue_delay),
            self.queue_delay_links_json()
        )
    }

    /// Cap on per-link entries in the `queue_delay_links` attribution
    /// block of [`Registry::latency_summary_json`].
    pub const QUEUE_DELAY_LINKS: usize = 8;

    /// The worst links by queue-delay p99 — `(link, p99 seconds)`,
    /// descending, ties broken by ascending link id, at most
    /// [`Registry::QUEUE_DELAY_LINKS`] entries. Links with no positive
    /// queue-delay p99 are excluded.
    pub fn worst_queue_delay_links(&self) -> Vec<(u32, f64)> {
        let mut worst: Vec<(u32, f64)> = self
            .links
            .iter()
            .filter_map(|(&l, m)| match m.queue_delay.quantile(0.99) {
                Some(p99) if p99 > 0.0 => Some((l, p99)),
                _ => None,
            })
            .collect();
        worst.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("p99 is not NaN")
                .then(a.0.cmp(&b.0))
        });
        worst.truncate(Self::QUEUE_DELAY_LINKS);
        worst
    }

    fn queue_delay_links_json(&self) -> String {
        let mut s = String::from("[");
        for (i, (l, _)) in self.worst_queue_delay_links().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let sketch = &self.links[l].queue_delay;
            // Splice the link id into the sketch's own summary object.
            s.push_str(&format!(
                "{{\"link\":{l},{}",
                &sketch_summary_json(sketch)[1..]
            ));
        }
        s.push(']');
        s
    }

    /// Compact JSON summary, embedded in the run manifest.
    pub fn summary_json(&self) -> String {
        let mut s = String::from("{\"event_counts\":{");
        for (i, (k, v)) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json_str(k)));
        }
        s.push_str("},");
        s.push_str(&format!(
            "\"flows\":{{\"added\":{},\"completed\":{},\"killed\":{}}},",
            self.flows.added, self.flows.completed, self.flows.killed
        ));
        s.push_str(&format!(
            "\"recompute\":{{\"events\":{},\"flows_touched\":{},\"links_touched\":{},\"flows_active\":{}}},",
            self.recompute.events,
            self.recompute.flows_touched,
            self.recompute.links_touched,
            self.recompute.flows_active
        ));
        s.push_str(&format!(
            "\"fct\":{},\"queue_delay\":{},",
            sketch_summary_json(&self.latency.fct),
            sketch_summary_json(&self.latency.queue_delay)
        ));
        // Surrogate cache stats appear only when the run actually exercised
        // the surrogate allocator, so non-surrogate summaries (and their CI
        // golden fingerprints) stay byte-identical.
        if self.surrogate.lookups > 0 || self.surrogate.mismatches > 0 {
            s.push_str(&format!(
                "\"surrogate\":{{\"lookups\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{},\
                 \"validations\":{},\"validation_rate\":{},\"mismatches\":{}}},",
                self.surrogate.lookups,
                self.surrogate.hits(),
                self.surrogate.misses,
                json_num(self.surrogate.hit_rate()),
                self.surrogate.validations,
                json_num(self.surrogate.validation_rate()),
                self.surrogate.mismatches
            ));
        }
        let hottest = self
            .links
            .iter()
            .max_by(|a, b| {
                a.1.peak_queue_bits
                    .partial_cmp(&b.1.peak_queue_bits)
                    .expect("peaks are not NaN")
            })
            .map(|(&l, m)| (l, m.peak_queue_bits));
        match hottest {
            Some((l, peak)) => s.push_str(&format!(
                "\"links_observed\":{},\"hottest_link\":{l},\"hottest_peak_queue_bits\":{}}}",
                self.links.len(),
                json_num(peak)
            )),
            None => s.push_str(&format!("\"links_observed\":{}}}", self.links.len())),
        }
        s
    }
}

impl Recorder for Registry {
    fn record(&mut self, ev: &Event) {
        self.observe(ev);
    }
}

/// `{"count":N,"p50":...,"p90":...,"p99":...,"p999":...}` for a sketch
/// of seconds — quantiles are `null` while the sketch is empty.
fn sketch_summary_json(s: &QuantileSketch) -> String {
    let q = |q: f64| match s.quantile(q) {
        Some(v) => json_num(v),
        None => "null".to_string(),
    };
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
        s.count(),
        q(0.50),
        q(0.90),
        q(0.99),
        q(0.999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_aggregates_flows_and_links() {
        let mut r = Registry::new();
        r.observe(&Event::FlowAdd {
            t_ns: 0,
            flow: 0,
            path_links: 2,
            size_bits: 1e9,
        });
        r.observe(&Event::FlowAdd {
            t_ns: 1,
            flow: 1,
            path_links: 2,
            size_bits: 3e9,
        });
        r.observe(&Event::FlowRemove {
            t_ns: 2,
            flow: 0,
            completed: true,
        });
        r.observe(&Event::FlowRemove {
            t_ns: 2,
            flow: 1,
            completed: false,
        });
        for i in 0..4u64 {
            r.observe(&Event::LinkSample {
                t_ns: 3 + i,
                link: 7,
                utilization: 0.25 * i as f64,
                queue_bits: 100.0 * i as f64,
                capacity_bps: 400e9,
            });
        }
        assert_eq!(r.count("flow_add"), 2);
        assert_eq!(r.latency().fct.count(), 1, "only the completed flow");
        assert_eq!(r.latency().queue_delay.count(), 4);
        assert_eq!(r.flows().added, 2);
        assert_eq!(r.flows().completed, 1);
        assert_eq!(r.flows().killed, 1);
        assert_eq!(r.flows().size_ecdf().median(), 1e9);
        let m = r.link(7).expect("link observed");
        assert_eq!(m.samples, 4);
        assert!((m.mean_utilization() - 0.375).abs() < 1e-12);
        assert_eq!(m.peak_queue_bits, 300.0);
        assert_eq!(r.links_observed(), 1);
        assert_eq!(r.link(8).map(|m| m.samples), None);
    }

    #[test]
    fn recompute_counters_accumulate() {
        let mut r = Registry::new();
        r.observe(&Event::RateRecompute {
            t_ns: 0,
            flows_touched: 10,
            links_touched: 3,
            flows_active: 100,
        });
        r.observe(&Event::RateRecompute {
            t_ns: 1,
            flows_touched: 2,
            links_touched: 1,
            flows_active: 100,
        });
        let rc = r.recompute();
        assert_eq!(rc.events, 2);
        assert_eq!(rc.flows_touched, 12);
        assert_eq!(rc.flows_active, 200);
    }

    fn burst(base_t: u64, link: u32) -> Vec<Event> {
        vec![
            Event::SimStart {
                label: format!("seg{link}"),
            },
            Event::FlowAdd {
                t_ns: base_t,
                flow: link as u64,
                path_links: 2,
                size_bits: 1e9 * (link + 1) as f64,
            },
            Event::LinkSample {
                t_ns: base_t + 1,
                link,
                utilization: 0.5,
                queue_bits: 10.0 * link as f64,
                capacity_bps: 100e9,
            },
            Event::FlowRemove {
                t_ns: base_t + 2,
                flow: link as u64,
                completed: link % 2 == 0,
            },
        ]
    }

    #[test]
    fn plan_order_merge_equals_sequential_aggregation() {
        let segments: Vec<Vec<Event>> = (0..4u32).map(|i| burst(100 * i as u64, i)).collect();

        // Sequential: one registry sees every event in plan order.
        let mut seq = Registry::new();
        for ev in segments.iter().flatten() {
            seq.observe(ev);
        }

        // Parallel: one registry per segment, merged in plan order.
        let mut merged = Registry::new();
        for seg in &segments {
            let mut worker = Registry::new();
            for ev in seg {
                worker.observe(ev);
            }
            merged.merge(&worker);
        }

        assert_eq!(
            seq.counts().collect::<Vec<_>>(),
            merged.counts().collect::<Vec<_>>()
        );
        assert_eq!(seq.flows().added, merged.flows().added);
        assert_eq!(seq.flows().completed, merged.flows().completed);
        assert_eq!(seq.flows().killed, merged.flows().killed);
        assert_eq!(
            seq.flows().size_ecdf().curve(&[0.0, 1e9, 2e9, 5e9]),
            merged.flows().size_ecdf().curve(&[0.0, 1e9, 2e9, 5e9])
        );
        assert_eq!(seq.links_observed(), merged.links_observed());
        for l in 0..4 {
            let (a, b) = (seq.link(l).unwrap(), merged.link(l).unwrap());
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.peak_queue_bits, b.peak_queue_bits);
            assert_eq!(a.mean_utilization(), b.mean_utilization());
            assert_eq!(a.utilization.bins(), b.utilization.bins());
        }
        assert_eq!(seq.summary_json(), merged.summary_json());
        assert_eq!(seq.latency_summary_json(), merged.latency_summary_json());
    }

    #[test]
    fn fct_is_measured_per_completed_flow() {
        let mut r = Registry::new();
        // Three flows: 1s, 2s, and a kill at 3s (not an FCT).
        for (flow, add, remove, completed) in [
            (0u64, 0u64, 1_000_000_000u64, true),
            (1, 0, 2_000_000_000, true),
            (2, 0, 3_000_000_000, false),
        ] {
            r.observe(&Event::FlowAdd {
                t_ns: add,
                flow,
                path_links: 1,
                size_bits: 1e9,
            });
            r.observe(&Event::FlowRemove {
                t_ns: remove,
                flow,
                completed,
            });
        }
        let fct = &r.latency().fct;
        assert_eq!(fct.count(), 2);
        let p999 = fct.quantile(0.999).unwrap();
        assert!((p999 - 2.0).abs() / 2.0 <= fct.alpha() + 1e-9, "{p999}");
    }

    #[test]
    fn sim_start_resets_flow_id_space() {
        let mut r = Registry::new();
        r.observe(&Event::FlowAdd {
            t_ns: 5_000_000_000,
            flow: 0,
            path_links: 1,
            size_bits: 1e9,
        });
        // New segment: clocks and flow ids restart. A remove for flow 0
        // at t=1s must not pair with the t=5s add of the old segment
        // (which would yield a bogus "negative" FCT).
        r.observe(&Event::SimStart {
            label: "seg2".into(),
        });
        r.observe(&Event::FlowRemove {
            t_ns: 1_000_000_000,
            flow: 0,
            completed: true,
        });
        assert_eq!(
            r.latency().fct.count(),
            0,
            "unmatched remove records nothing"
        );
        assert_eq!(r.flows().completed, 1, "population counters still tally");
    }

    #[test]
    fn down_link_samples_skip_queue_delay() {
        let mut r = Registry::new();
        r.observe(&Event::LinkSample {
            t_ns: 0,
            link: 1,
            utilization: 0.0,
            queue_bits: 5e9,
            capacity_bps: 0.0,
        });
        r.observe(&Event::LinkSample {
            t_ns: 1,
            link: 1,
            utilization: 0.5,
            queue_bits: 5e9,
            capacity_bps: 100e9,
        });
        let qd = &r.latency().queue_delay;
        assert_eq!(qd.count(), 1, "down-link sample has no finite delay");
        let p50 = qd.quantile(0.5).unwrap();
        assert!((p50 - 0.05).abs() / 0.05 <= qd.alpha() + 1e-9, "{p50}");
    }

    #[test]
    fn queue_delay_links_rank_worst_first_and_are_bounded() {
        let mut r = Registry::new();
        // More links than the cap, each with one sample; link id and delay
        // move in opposite directions so the p99 ordering is the reverse of
        // the id ordering.
        let n = Registry::QUEUE_DELAY_LINKS + 3;
        for i in 0..n {
            r.observe(&Event::LinkSample {
                t_ns: 0,
                link: i as u32,
                utilization: 0.5,
                queue_bits: 1e9 * (n - i) as f64,
                capacity_bps: 100e9,
            });
        }
        // A queue-free link never appears in the attribution.
        r.observe(&Event::LinkSample {
            t_ns: 0,
            link: 99,
            utilization: 0.9,
            queue_bits: 0.0,
            capacity_bps: 100e9,
        });
        let worst = r.worst_queue_delay_links();
        assert_eq!(worst.len(), Registry::QUEUE_DELAY_LINKS);
        let ids: Vec<u32> = worst.iter().map(|&(l, _)| l).collect();
        let expect: Vec<u32> = (0..Registry::QUEUE_DELAY_LINKS as u32).collect();
        assert_eq!(ids, expect, "worst queue delay belongs to lowest ids");
        assert!(
            worst.windows(2).all(|w| w[0].1 >= w[1].1),
            "p99 descending: {worst:?}"
        );
        let json = r.latency_summary_json();
        assert!(
            json.contains("\"queue_delay_links\":[{\"link\":0,"),
            "{json}"
        );
        assert!(!json.contains("\"link\":99"), "{json}");
    }

    #[test]
    fn queue_delay_links_survive_merge() {
        let (mut a, mut b) = (Registry::new(), Registry::new());
        for (reg, bits) in [(&mut a, 2e9), (&mut b, 8e9)] {
            reg.observe(&Event::LinkSample {
                t_ns: 0,
                link: 7,
                utilization: 0.5,
                queue_bits: bits,
                capacity_bps: 100e9,
            });
        }
        let mut seq = Registry::new();
        for bits in [2e9, 8e9] {
            seq.observe(&Event::LinkSample {
                t_ns: 0,
                link: 7,
                utilization: 0.5,
                queue_bits: bits,
                capacity_bps: 100e9,
            });
        }
        a.merge(&b);
        assert_eq!(a.latency_summary_json(), seq.latency_summary_json());
    }

    #[test]
    fn latency_summary_shapes_are_stable() {
        let r = Registry::new();
        assert_eq!(
            r.latency_summary_json(),
            "{\"fct\":{\"count\":0,\"p50\":null,\"p90\":null,\"p99\":null,\"p999\":null},\
             \"queue_delay\":{\"count\":0,\"p50\":null,\"p90\":null,\"p99\":null,\"p999\":null},\
             \"queue_delay_links\":[]}"
        );
        assert!(r.summary_json().contains("\"fct\":{\"count\":0"));
        assert!(r.summary_json().contains("\"queue_delay\":{\"count\":0"));
    }

    #[test]
    fn surrogate_counters_match_hand_computed_trace() {
        let mut r = Registry::new();
        assert_eq!(r.surrogate().lookups, 0);
        assert!(
            !r.summary_json().contains("\"surrogate\""),
            "no surrogate block before any surrogate event"
        );
        // Three recomputes: 4 lookups / 1 miss, 2 lookups / 0 misses with
        // one validation, then 2 lookups / 1 miss with a mismatch.
        r.observe(&Event::SurrogateMiss {
            t_ns: 0,
            lookups: 4,
            misses: 1,
            validations: 0,
        });
        r.observe(&Event::SurrogateMiss {
            t_ns: 1,
            lookups: 2,
            misses: 0,
            validations: 1,
        });
        r.observe(&Event::SurrogateMiss {
            t_ns: 2,
            lookups: 2,
            misses: 1,
            validations: 1,
        });
        r.observe(&Event::SurrogateMismatch {
            t_ns: 2,
            mismatches: 1,
        });
        let s = r.surrogate();
        assert_eq!(s.lookups, 8);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits(), 6);
        assert_eq!(s.validations, 2);
        assert_eq!(s.mismatches, 1);
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.validation_rate(), 0.25);
        assert_eq!(r.count("surrogate_miss"), 3);
        assert_eq!(r.count("surrogate_mismatch"), 1);
        let json = r.summary_json();
        assert!(
            json.contains(
                "\"surrogate\":{\"lookups\":8,\"hits\":6,\"misses\":2,\"hit_rate\":0.75,\
                 \"validations\":2,\"validation_rate\":0.25,\"mismatches\":1}"
            ),
            "{json}"
        );

        // Merging folds the counters like sequential observation would.
        let mut merged = Registry::new();
        merged.merge(&r);
        merged.merge(&r);
        assert_eq!(merged.surrogate().lookups, 16);
        assert_eq!(merged.surrogate().misses, 4);
        assert_eq!(merged.surrogate().validations, 4);
        assert_eq!(merged.surrogate().mismatches, 2);
        assert_eq!(merged.surrogate().hit_rate(), 0.75);
    }

    #[test]
    fn summary_json_is_well_formed_ish() {
        let mut r = Registry::new();
        r.observe(&Event::SimStart { label: "x".into() });
        let s = r.summary_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"sim_start\":1"));
        assert!(s.contains("\"links_observed\":0"));
    }
}
