//! Per-cell event segments and their ordered merge.
//!
//! A parallel experiment runner executes cells (figure × seed × allocator)
//! on worker threads, each with its own per-cell recorder handed in
//! through its `SimCtx`. Every cell captures its events into an
//! [`EventLog`] — an owned, `Send`able segment — and the coordinator
//! merges the segments back **in plan order**, not completion order. Because every segment begins with its own
//! [`Event::SimStart`], the merged stream still satisfies the sim-time
//! monotonicity contract *per segment*: replaying it through a
//! [`JsonlRecorder`](crate::JsonlRecorder) re-validates exactly what a
//! sequential run would have produced, byte for byte.

use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::recorder::Recorder;

/// A clonable in-memory event capture: the segment buffer of one run cell.
///
/// Clones share one buffer (like [`SharedBuf`](crate::SharedBuf)), so a
/// handle can be kept outside the boxed [`Recorder`] a session carries,
/// and the captured events collected after the run with
/// [`take`](EventLog::take). The handle is `Send` (`Arc<Mutex<...>>`): a
/// log can travel with its session to a worker thread and back.
#[derive(Clone, Default)]
pub struct EventLog(Arc<Mutex<Vec<Event>>>);

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("event log").len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("event log").is_empty()
    }

    /// Copy of the captured events.
    pub fn events(&self) -> Vec<Event> {
        self.0.lock().expect("event log").clone()
    }

    /// Drain the captured events, leaving the log empty. This is how a
    /// worker thread hands its cell's telemetry back to the coordinator.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.0.lock().expect("event log"))
    }
}

impl Recorder for EventLog {
    fn record(&mut self, ev: &Event) {
        self.0.lock().expect("event log").push(ev.clone());
    }
}

/// A forwarding cursor over a live [`EventLog`]: repeatedly [`pump`]s the
/// events appended since the last call into a sink, without draining the
/// log. Because the log is append-only while a cell runs (the producer
/// only [`take`](EventLog::take)s at the very end) and every segment opens
/// with [`Event::SimStart`], pumping preserves the per-segment sim-time
/// monotonicity contract — a downstream [`JsonlRecorder`](crate::JsonlRecorder)
/// over a socket writer re-validates exactly the bytes a post-hoc
/// [`replay`] would produce.
///
/// The cursor holds the lock only long enough to clone the new tail, so a
/// streaming reader never blocks the simulation for more than a batch
/// copy.
///
/// [`pump`]: EventStream::pump
pub struct EventStream {
    log: EventLog,
    pos: usize,
}

impl EventStream {
    /// A cursor positioned at the start of `log`.
    pub fn new(log: EventLog) -> Self {
        EventStream { log, pos: 0 }
    }

    /// How many events this cursor has forwarded so far.
    pub fn forwarded(&self) -> usize {
        self.pos
    }

    /// Forward every event appended since the last pump into `sink`,
    /// returning how many were forwarded. Does not flush the sink.
    pub fn pump(&mut self, sink: &mut dyn Recorder) -> usize {
        let tail: Vec<Event> = {
            let buf = self.log.0.lock().expect("event log");
            if self.pos >= buf.len() {
                return 0;
            }
            buf[self.pos..].to_vec()
        };
        for ev in &tail {
            sink.record(ev);
        }
        self.pos += tail.len();
        tail.len()
    }

    /// Forward the rest of a *finished* cell from its collected segment:
    /// the producer has already [`take`](EventLog::take)n the log (so the
    /// live buffer is empty), and `events` is that complete segment. The
    /// already-pumped prefix is skipped; everything after the cursor is
    /// forwarded. Returns how many events were forwarded.
    pub fn finish(mut self, events: &[Event], sink: &mut dyn Recorder) -> usize {
        // Drain any stragglers still in the live buffer first (the
        // producer may not have taken the log at all). After this, `pos`
        // counts forwarded events — an index into the full segment whether
        // they came from the live buffer or from `events`.
        let live = self.pump(sink);
        let rest = &events[self.pos.min(events.len())..];
        for ev in rest {
            sink.record(ev);
        }
        sink.flush();
        live + rest.len()
    }
}

/// Merge per-cell segments **in the given (plan) order** into one stream.
///
/// # Panics
/// Panics if a non-empty segment does not begin with [`Event::SimStart`]:
/// without the segment marker, a downstream monotonic sink could not tell
/// where one cell's clock ends and the next begins, and the merge would be
/// silently unsound.
pub fn merge_segments<I>(segments: I) -> Vec<Event>
where
    I: IntoIterator<Item = Vec<Event>>,
{
    let mut out = Vec::new();
    for (i, seg) in segments.into_iter().enumerate() {
        if let Some(first) = seg.first() {
            assert!(
                matches!(first, Event::SimStart { .. }),
                "segment {i} does not begin with sim_start (got {first:?}); \
                 each cell must open its own run segment"
            );
        }
        out.extend(seg);
    }
    out
}

/// Replay a merged stream into any sink (e.g. a
/// [`JsonlRecorder`](crate::JsonlRecorder), which re-checks per-segment
/// sim-time monotonicity, or a [`Registry`](crate::Registry), which
/// aggregates exactly as it would have live).
pub fn replay(events: &[Event], sink: &mut dyn Recorder) {
    for ev in events {
        sink.record(ev);
    }
    sink.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{JsonlRecorder, SharedBuf};

    fn seg(label: &str, stamps: &[u64]) -> Vec<Event> {
        let mut v = vec![Event::SimStart {
            label: label.into(),
        }];
        v.extend(stamps.iter().map(|&t| Event::LinkState {
            t_ns: t,
            link: 1,
            up: true,
        }));
        v
    }

    #[test]
    fn event_log_captures_and_drains() {
        let log = EventLog::new();
        let mut rec: Box<dyn Recorder> = Box::new(log.clone());
        rec.record(&Event::SimStart { label: "a".into() });
        rec.record(&Event::LinkState {
            t_ns: 3,
            link: 0,
            up: false,
        });
        assert_eq!(log.len(), 2);
        let events = log.take();
        assert_eq!(events.len(), 2);
        assert!(log.is_empty(), "take drains the shared buffer");
        assert_eq!(events[1].t_ns(), 3);
    }

    #[test]
    fn merged_segments_replay_through_a_monotonic_sink() {
        // Segment B's clock restarts below segment A's last stamp — legal,
        // because each segment opens with SimStart.
        let merged = merge_segments(vec![seg("a", &[5, 9]), seg("b", &[1, 2]), Vec::new()]);
        assert_eq!(merged.len(), 6);
        let buf = SharedBuf::new();
        let mut sink = JsonlRecorder::new(buf.clone());
        replay(&merged, &mut sink);
        assert_eq!(sink.events(), 6);
        let text = buf.text();
        assert_eq!(text.lines().count(), 6);
        // Plan order, not completion order: a's events precede b's.
        assert!(text.find("\"label\":\"a\"").unwrap() < text.find("\"label\":\"b\"").unwrap());
    }

    #[test]
    fn event_stream_pumps_incrementally_and_matches_replay() {
        let log = EventLog::new();
        let mut producer: Box<dyn Recorder> = Box::new(log.clone());
        let mut stream = EventStream::new(log.clone());
        let streamed = SharedBuf::new();
        let mut out = JsonlRecorder::new(streamed.clone());

        let segment = seg("cell", &[1, 2, 3, 4]);
        producer.record(&segment[0]);
        producer.record(&segment[1]);
        assert_eq!(stream.pump(&mut out), 2);
        assert_eq!(stream.pump(&mut out), 0, "no new events, nothing pumped");
        producer.record(&segment[2]);
        assert_eq!(stream.pump(&mut out), 1);
        producer.record(&segment[3]);
        producer.record(&segment[4]);
        // Producer hands the finished segment over (as the runner does).
        let collected = log.take();
        assert_eq!(stream.finish(&collected, &mut out), 2);

        // Byte-identical to a post-hoc replay of the collected segment.
        let replayed = SharedBuf::new();
        let mut sink = JsonlRecorder::new(replayed.clone());
        replay(&segment, &mut sink);
        assert_eq!(streamed.text(), replayed.text());
    }

    #[test]
    fn event_stream_finish_skips_the_pumped_prefix() {
        let log = EventLog::new();
        let mut producer: Box<dyn Recorder> = Box::new(log.clone());
        let segment = seg("cell", &[7]);
        for ev in &segment {
            producer.record(ev);
        }
        // Never pumped live; the full segment arrives at finish time while
        // the live buffer still holds everything.
        let stream = EventStream::new(log.clone());
        let streamed = SharedBuf::new();
        let mut out = JsonlRecorder::new(streamed.clone());
        assert_eq!(stream.finish(&log.events(), &mut out), 2);
        assert_eq!(streamed.text().lines().count(), 2, "no duplicate lines");
    }

    #[test]
    #[should_panic(expected = "does not begin with sim_start")]
    fn merge_rejects_unmarked_segments() {
        merge_segments(vec![vec![Event::LinkState {
            t_ns: 0,
            link: 0,
            up: true,
        }]]);
    }
}
