//! Shared recorder handles.
//!
//! Simulations are built from several layers (fluid net, routing, transport,
//! collectives, faults) that all want to emit into *one* sink. A
//! [`SharedRecorder`] is a cheaply clonable, `Send`able handle to a single
//! boxed [`Recorder`]; the `enabled` flag is cached in the handle so hot
//! paths decide "skip instrumentation" with one bool load and no lock.
//!
//! The recorder reaches a simulation **explicitly**, through a
//! [`SimCtx`](crate::SimCtx) passed to the session constructor
//! (`ClusterSim::with_ctx`, `Scenario::build_with`). The previous
//! `tracing`-style ambient (thread-local) recorder shims — `install` /
//! `current` / `RecorderScope` — were deprecated when `SimCtx` landed and
//! have now been removed: thread-local state pinned every session to its
//! construction thread, which blocked `Send`-clean sessions, the parallel
//! allocator, and the long-running `serve` workers.

use std::sync::{Arc, Mutex};

use hpn_sim::{NetProbe, SimTime};

use crate::event::Event;
use crate::recorder::{NullRecorder, Recorder};

/// A clonable, `Send`able handle to one shared [`Recorder`].
#[derive(Clone)]
pub struct SharedRecorder {
    inner: Arc<Mutex<Box<dyn Recorder>>>,
    enabled: bool,
}

impl Default for SharedRecorder {
    fn default() -> Self {
        Self::null()
    }
}

impl SharedRecorder {
    /// A handle to a fresh [`NullRecorder`] — disabled, zero-cost.
    pub fn null() -> Self {
        Self::new(Box::new(NullRecorder))
    }

    /// Wrap a recorder in a shared handle. The sink's `enabled()` is
    /// sampled once here and cached.
    pub fn new(rec: Box<dyn Recorder>) -> Self {
        let enabled = rec.enabled();
        SharedRecorder {
            inner: Arc::new(Mutex::new(rec)),
            enabled,
        }
    }

    /// Whether instrumentation sites should construct events at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event, constructing it only when the sink is enabled.
    /// This is the call sites' workhorse: with the [`NullRecorder`]
    /// attached the closure never runs and the lock is never taken.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if self.enabled {
            self.inner.lock().expect("recorder sink").record(&build());
        }
    }

    /// Record an already-built event (when construction is free anyway).
    pub fn record(&self, ev: &Event) {
        if self.enabled {
            self.inner.lock().expect("recorder sink").record(ev);
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        self.inner.lock().expect("recorder sink").flush();
    }

    /// A boxed [`NetProbe`] forwarding fluid-net callbacks into this
    /// recorder, for [`hpn_sim::FlowNet::set_probe`]. Callers should only
    /// attach it when [`SharedRecorder::enabled`] — a probe on a disabled
    /// recorder would pay event construction for nothing.
    pub fn net_probe(&self) -> Box<dyn NetProbe + Send> {
        Box::new(ProbeAdapter(self.clone()))
    }
}

/// Adapter: `hpn-sim` probe callbacks → telemetry events.
struct ProbeAdapter(SharedRecorder);

impl NetProbe for ProbeAdapter {
    fn flow_added(&mut self, t: SimTime, flow: u64, path_links: u32, size_bits: f64) {
        self.0.emit(|| Event::FlowAdd {
            t_ns: t.as_nanos(),
            flow,
            path_links,
            size_bits,
        });
    }

    fn flow_removed(&mut self, t: SimTime, flow: u64, completed: bool) {
        self.0.emit(|| Event::FlowRemove {
            t_ns: t.as_nanos(),
            flow,
            completed,
        });
    }

    fn rate_recompute(
        &mut self,
        t: SimTime,
        flows_touched: u64,
        links_touched: u64,
        flows_active: u64,
    ) {
        self.0.emit(|| Event::RateRecompute {
            t_ns: t.as_nanos(),
            flows_touched,
            links_touched,
            flows_active,
        });
    }

    fn link_state(&mut self, t: SimTime, link: u32, up: bool) {
        self.0.emit(|| Event::LinkState {
            t_ns: t.as_nanos(),
            link,
            up,
        });
    }

    fn surrogate_cache(
        &mut self,
        t: SimTime,
        lookups: u64,
        misses: u64,
        validations: u64,
        mismatches: u64,
    ) {
        if lookups > 0 {
            self.0.emit(|| Event::SurrogateMiss {
                t_ns: t.as_nanos(),
                lookups,
                misses,
                validations,
            });
        }
        if mismatches > 0 {
            self.0.emit(|| Event::SurrogateMismatch {
                t_ns: t.as_nanos(),
                mismatches,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{JsonlRecorder, SharedBuf};

    #[test]
    fn shared_recorder_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SharedRecorder>();
    }

    #[test]
    fn null_handle_never_runs_the_closure() {
        let rec = SharedRecorder::null();
        assert!(!rec.enabled());
        rec.emit(|| panic!("closure must not run when disabled"));
    }

    #[test]
    fn clones_share_one_sink() {
        let buf = SharedBuf::new();
        let rec = SharedRecorder::new(Box::new(JsonlRecorder::new(buf.clone())));
        let a = rec.clone();
        let b = rec;
        a.emit(|| Event::SimStart { label: "a".into() });
        b.emit(|| Event::SimStart { label: "b".into() });
        a.flush();
        assert_eq!(buf.text().lines().count(), 2);
    }

    #[test]
    fn probe_adapter_translates_callbacks() {
        let buf = SharedBuf::new();
        let rec = SharedRecorder::new(Box::new(JsonlRecorder::new(buf.clone())));
        let mut probe = rec.net_probe();
        probe.flow_added(SimTime::from_nanos(5), 3, 4, 1e9);
        probe.rate_recompute(SimTime::from_nanos(6), 2, 1, 10);
        probe.flow_removed(SimTime::from_nanos(7), 3, true);
        probe.link_state(SimTime::from_nanos(8), 9, false);
        // Quiet recompute (no lookups, no mismatches): emits nothing.
        probe.surrogate_cache(SimTime::from_nanos(9), 0, 0, 0, 0);
        // Lookups without mismatches: one SurrogateMiss event.
        probe.surrogate_cache(SimTime::from_nanos(10), 4, 1, 2, 0);
        // A mismatch rides along with its lookups: both events.
        probe.surrogate_cache(SimTime::from_nanos(11), 2, 0, 2, 1);
        rec.flush();
        let text = buf.text();
        let kinds: Vec<&str> = text
            .lines()
            .map(|l| {
                let start = l.find(":\"").expect("ev field") + 2;
                &l[start..l[start..].find('"').expect("close quote") + start]
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "flow_add",
                "rate_recompute",
                "flow_remove",
                "link_state",
                "surrogate_miss",
                "surrogate_miss",
                "surrogate_mismatch"
            ]
        );
        assert!(text.contains("\"link\":9,\"up\":false"));
        assert!(text.contains("\"lookups\":4,\"misses\":1,\"validations\":2"));
        assert!(text.contains("\"mismatches\":1"));
    }
}
