//! Interleaved per-thread segments must merge into a stream that still
//! passes the per-segment sim-time monotonicity check, and the merged
//! `Registry` aggregates must equal a sequential run's.

use hpn_telemetry::{
    current, merge_segments, replay, Event, EventLog, JsonlRecorder, RecorderScope, Registry,
    SharedBuf, SharedRecorder,
};

/// Emit one cell's synthetic telemetry through the *ambient* recorder —
/// the same path simulations use — with a clock that restarts at zero.
fn emit_cell(cell: u32, events_per_cell: u64) {
    let rec = current();
    rec.record(&Event::SimStart {
        label: format!("cell{cell}"),
    });
    for i in 0..events_per_cell {
        rec.record(&Event::FlowAdd {
            t_ns: i * 10,
            flow: u64::from(cell) << 32 | i,
            path_links: 4,
            size_bits: 1e9 + f64::from(cell),
        });
        rec.record(&Event::LinkSample {
            t_ns: i * 10 + 5,
            link: cell % 3,
            utilization: (i % 10) as f64 / 10.0,
            queue_bits: i as f64,
        });
    }
}

/// Run `cells` cells, each in its own thread with its own scoped ambient
/// recorder, and return the captured segments indexed by cell (plan order).
fn parallel_segments(cells: u32, events_per_cell: u64) -> Vec<Vec<Event>> {
    let mut handles = Vec::new();
    for cell in 0..cells {
        handles.push(std::thread::spawn(move || {
            let log = EventLog::new();
            let scope = RecorderScope::attach(SharedRecorder::new(Box::new(log.clone())));
            emit_cell(cell, events_per_cell);
            scope.detach();
            log.take()
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect()
}

fn sequential_segments(cells: u32, events_per_cell: u64) -> Vec<Vec<Event>> {
    (0..cells)
        .map(|cell| {
            let log = EventLog::new();
            let scope = RecorderScope::attach(SharedRecorder::new(Box::new(log.clone())));
            emit_cell(cell, events_per_cell);
            scope.detach();
            log.take()
        })
        .collect()
}

#[test]
fn interleaved_thread_segments_merge_monotonically() {
    let segments = parallel_segments(6, 50);
    let merged = merge_segments(segments);
    // Each cell restarts its clock at zero, so a merged stream only passes
    // the JSONL monotonicity check if every segment kept its SimStart
    // marker — replay() would panic otherwise.
    let buf = SharedBuf::new();
    let mut jsonl = JsonlRecorder::new(buf.clone());
    replay(&merged, &mut jsonl);
    assert_eq!(jsonl.events() as usize, merged.len());
    assert_eq!(buf.text().lines().count(), 6 * (1 + 2 * 50));
}

#[test]
fn merged_registry_equals_sequential_registry() {
    let par = parallel_segments(5, 40);
    let seq = sequential_segments(5, 40);

    // The per-thread capture itself is deterministic: same segments either way.
    assert_eq!(par, seq, "per-cell segments are schedule-independent");

    // Parallel reduction: one registry per worker segment, merged in plan order.
    let mut merged = Registry::new();
    for seg in &par {
        let mut worker = Registry::new();
        replay(seg, &mut worker);
        merged.merge(&worker);
    }

    // Sequential baseline: one registry sees everything in plan order.
    let mut sequential = Registry::new();
    for seg in &seq {
        replay(seg, &mut sequential);
    }

    assert_eq!(
        sequential.counts().collect::<Vec<_>>(),
        merged.counts().collect::<Vec<_>>()
    );
    assert_eq!(sequential.flows().added, merged.flows().added);
    assert_eq!(sequential.links_observed(), merged.links_observed());
    for l in 0..3 {
        let (a, b) = (sequential.link(l).unwrap(), merged.link(l).unwrap());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.utilization.bins(), b.utilization.bins());
        assert_eq!(a.mean_utilization(), b.mean_utilization());
    }
    assert_eq!(sequential.summary_json(), merged.summary_json());
}

#[test]
fn scoped_recorders_do_not_leak_across_threads() {
    // A recorder attached on one thread must not be visible from another.
    let log = EventLog::new();
    let _scope = RecorderScope::attach(SharedRecorder::new(Box::new(log.clone())));
    assert!(current().enabled());
    let other_thread_sees = std::thread::spawn(|| current().enabled())
        .join()
        .expect("probe thread");
    assert!(
        !other_thread_sees,
        "ambient recorder is per-thread, not process-global"
    );
}
