//! Interleaved per-thread segments must merge into a stream that still
//! passes the per-segment sim-time monotonicity check, and the merged
//! `Registry` aggregates must equal a sequential run's.
//!
//! Each cell carries its recorder in an explicit [`SimCtx`] — the handle
//! is `Send`, so the context itself crosses into the worker thread, which
//! is exactly how the parallel experiment runner ships recorders to cells.

use hpn_telemetry::{
    merge_segments, replay, Event, EventLog, JsonlRecorder, Registry, SharedBuf, SharedRecorder,
    SimCtx,
};

/// Emit one cell's synthetic telemetry through the context's recorder —
/// the same path simulations use — with a clock that restarts at zero.
fn emit_cell(ctx: &SimCtx, cell: u32, events_per_cell: u64) {
    let rec = ctx.recorder();
    rec.record(&Event::SimStart {
        label: format!("cell{cell}"),
    });
    for i in 0..events_per_cell {
        rec.record(&Event::FlowAdd {
            t_ns: i * 10,
            flow: u64::from(cell) << 32 | i,
            path_links: 4,
            size_bits: 1e9 + f64::from(cell),
        });
        rec.record(&Event::LinkSample {
            t_ns: i * 10 + 5,
            link: cell % 3,
            utilization: (i % 10) as f64 / 10.0,
            queue_bits: i as f64,
            capacity_bps: 400e9,
        });
    }
}

/// A per-cell context recording into a fresh [`EventLog`].
fn cell_ctx() -> (SimCtx, EventLog) {
    let log = EventLog::new();
    let ctx = SimCtx::new().with_recorder(SharedRecorder::new(Box::new(log.clone())));
    (ctx, log)
}

/// Run `cells` cells, each on its own thread with its own context
/// (constructed on the coordinator and *moved* to the worker), and return
/// the captured segments indexed by cell (plan order).
fn parallel_segments(cells: u32, events_per_cell: u64) -> Vec<Vec<Event>> {
    let mut handles = Vec::new();
    for cell in 0..cells {
        let (ctx, log) = cell_ctx();
        handles.push(std::thread::spawn(move || {
            emit_cell(&ctx, cell, events_per_cell);
            ctx.recorder().flush();
            log.take()
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect()
}

fn sequential_segments(cells: u32, events_per_cell: u64) -> Vec<Vec<Event>> {
    (0..cells)
        .map(|cell| {
            let (ctx, log) = cell_ctx();
            emit_cell(&ctx, cell, events_per_cell);
            ctx.recorder().flush();
            log.take()
        })
        .collect()
}

#[test]
fn interleaved_thread_segments_merge_monotonically() {
    let segments = parallel_segments(6, 50);
    let merged = merge_segments(segments);
    // Each cell restarts its clock at zero, so a merged stream only passes
    // the JSONL monotonicity check if every segment kept its SimStart
    // marker — replay() would panic otherwise.
    let buf = SharedBuf::new();
    let mut jsonl = JsonlRecorder::new(buf.clone());
    replay(&merged, &mut jsonl);
    assert_eq!(jsonl.events() as usize, merged.len());
    assert_eq!(buf.text().lines().count(), 6 * (1 + 2 * 50));
}

#[test]
fn merged_registry_equals_sequential_registry() {
    let par = parallel_segments(5, 40);
    let seq = sequential_segments(5, 40);

    // The per-thread capture itself is deterministic: same segments either way.
    assert_eq!(par, seq, "per-cell segments are schedule-independent");

    // Parallel reduction: one registry per worker segment, merged in plan order.
    let mut merged = Registry::new();
    for seg in &par {
        let mut worker = Registry::new();
        replay(seg, &mut worker);
        merged.merge(&worker);
    }

    // Sequential baseline: one registry sees everything in plan order.
    let mut sequential = Registry::new();
    for seg in &seq {
        replay(seg, &mut sequential);
    }

    assert_eq!(
        sequential.counts().collect::<Vec<_>>(),
        merged.counts().collect::<Vec<_>>()
    );
    assert_eq!(sequential.flows().added, merged.flows().added);
    assert_eq!(sequential.links_observed(), merged.links_observed());
    for l in 0..3 {
        let (a, b) = (sequential.link(l).unwrap(), merged.link(l).unwrap());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.utilization.bins(), b.utilization.bins());
        assert_eq!(a.mean_utilization(), b.mean_utilization());
    }
    assert_eq!(sequential.summary_json(), merged.summary_json());
    assert_eq!(
        sequential.latency_summary_json(),
        merged.latency_summary_json(),
        "quantile summaries are byte-identical across merge groupings"
    );
}

#[test]
fn contexts_are_isolated_not_thread_scoped() {
    // Two contexts on the same thread record into different sinks — and a
    // context moved to another thread keeps recording into its own sink.
    // No thread-local coupling in either direction.
    let (ctx_a, log_a) = cell_ctx();
    let (ctx_b, log_b) = cell_ctx();
    emit_cell(&ctx_a, 0, 2);
    emit_cell(&ctx_b, 1, 3);
    assert_eq!(log_a.len(), 1 + 2 * 2);
    assert_eq!(log_b.len(), 1 + 2 * 3);

    let moved = std::thread::spawn(move || {
        emit_cell(&ctx_b, 2, 1);
        ctx_b.recorder().enabled()
    })
    .join()
    .expect("probe thread");
    assert!(moved, "a moved context still records");
    assert_eq!(log_b.len(), 1 + 2 * 3 + 1 + 2, "events landed in b's sink");
    assert_eq!(log_a.len(), 1 + 2 * 2, "a's sink untouched by b's thread");
}
