//! DCN+ — the previous-generation baseline fabric (Appendix C).
//!
//! DCN+ is a traditional 3-tier Clos with dual-ToR access and full bisection
//! bandwidth, but **no rail-optimization and no dual-plane**:
//!
//! * A segment is 16 hosts (128 GPUs) served by a single dual-ToR pair: all
//!   8 NICs of a host connect to the same two ToRs (port 0 → ToR1,
//!   port 1 → ToR2).
//! * Each ToR has 128×200G downstream ports and 64×400G uplinks — 8 parallel
//!   400G cables to each of the pod's 8 Aggregation switches (full
//!   bisection).
//! * Each pod holds 4 segments (512 GPUs); each Aggregation switch has
//!   64×400G uplinks spread over the Core layer (128 Core switches at paper
//!   scale, 32 pods, 16K GPUs total).
//!
//! Because ToRs of *both* NIC ports sit under the same Aggregation pool,
//! downstream traffic converges from many Aggs onto the two ToRs through
//! 5-tuple hashing — the hash-polarization scenario of Fig 13a.

use crate::error::{nonzero, positive, BuildError};
use crate::fabric::{attach_nic_port, build_host, Fabric, FabricKind, Host, HostParams};
use crate::graph::{Network, NodeId, NodeKind};

/// Parameters of a DCN+ build.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcnPlusConfig {
    /// Number of pods (paper: up to 32).
    pub pods: u32,
    /// Segments per pod (paper: 4).
    pub segments_per_pod: u32,
    /// Hosts per segment (paper: 16).
    pub hosts_per_segment: u32,
    /// Aggregation switches per pod (paper: 8).
    pub aggs_per_pod: u16,
    /// Parallel 400G cables between each ToR and each Agg (paper: 8).
    pub tor_agg_parallel: u16,
    /// Core uplinks per Aggregation switch (paper: 64 — full bisection).
    pub agg_core_uplinks: u16,
    /// Total Core switches (paper: 128).
    pub cores: u16,
    /// Trunk port speed, bits/s (400Gbps).
    pub trunk_bps: f64,
    /// Egress buffer on switch ports, bits.
    pub switch_buffer_bits: f64,
    /// Host hardware parameters.
    pub host: HostParams,
}

impl DcnPlusConfig {
    /// Paper-scale configuration (Appendix C).
    pub fn paper() -> Self {
        DcnPlusConfig {
            pods: 32,
            segments_per_pod: 4,
            hosts_per_segment: 16,
            aggs_per_pod: 8,
            tor_agg_parallel: 8,
            agg_core_uplinks: 64,
            cores: 128,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            host: HostParams::paper(),
        }
    }

    /// Miniature configuration for unit tests.
    pub fn tiny() -> Self {
        DcnPlusConfig {
            pods: 2,
            segments_per_pod: 2,
            hosts_per_segment: 2,
            aggs_per_pod: 2,
            tor_agg_parallel: 2,
            agg_core_uplinks: 4,
            cores: 4,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            host: HostParams::tiny(),
        }
    }

    /// GPUs per segment.
    pub fn gpus_per_segment(&self) -> u32 {
        self.hosts_per_segment * self.host.rails as u32
    }

    /// GPUs per pod.
    pub fn gpus_per_pod(&self) -> u32 {
        self.gpus_per_segment() * self.segments_per_pod
    }

    /// Check every field a scenario file could have set (the core-uplink
    /// modulus below divides by `cores`).
    pub fn validate(&self) -> Result<(), BuildError> {
        nonzero("pods", self.pods as u64)?;
        nonzero("segments_per_pod", self.segments_per_pod as u64)?;
        nonzero("hosts_per_segment", self.hosts_per_segment as u64)?;
        nonzero("aggs_per_pod", self.aggs_per_pod as u64)?;
        nonzero("tor_agg_parallel", self.tor_agg_parallel as u64)?;
        nonzero("agg_core_uplinks", self.agg_core_uplinks as u64)?;
        nonzero("cores", self.cores as u64)?;
        nonzero("host.rails", self.host.rails as u64)?;
        positive("trunk_bps", self.trunk_bps)?;
        positive("switch_buffer_bits", self.switch_buffer_bits)?;
        positive("host.nvlink_bps", self.host.nvlink_bps)?;
        positive("host.pcie_bps", self.host.pcie_bps)?;
        positive("host.nic_port_bps", self.host.nic_port_bps)?;
        positive("host.host_buffer_bits", self.host.host_buffer_bits)?;
        Ok(())
    }

    /// Build the fabric, or explain which field is invalid.
    pub fn try_build(&self) -> Result<Fabric, BuildError> {
        self.validate()?;
        Ok(self.build_unchecked())
    }

    /// Build the fabric. Panics on an invalid configuration — use
    /// [`DcnPlusConfig::try_build`] when the config came from user input.
    pub fn build(&self) -> Fabric {
        match self.try_build() {
            Ok(f) => f,
            Err(e) => panic!("DcnPlusConfig::build: {e}"),
        }
    }

    fn build_unchecked(&self) -> Fabric {
        let mut net = Network::new();
        let mut hosts: Vec<Host> = Vec::new();
        let mut tors: Vec<NodeId> = Vec::new();
        let mut aggs: Vec<NodeId> = Vec::new();
        let mut cores: Vec<NodeId> = Vec::new();

        for index in 0..self.cores {
            cores.push(net.add_node(NodeKind::Core { plane: 0, index }));
        }

        let mut host_id: u32 = 0;
        for pod in 0..self.pods {
            let mut pod_aggs: Vec<NodeId> = Vec::new();
            for index in 0..self.aggs_per_pod {
                let a = net.add_node(NodeKind::Agg {
                    pod,
                    plane: 0,
                    index,
                });
                pod_aggs.push(a);
                aggs.push(a);
                for u in 0..self.agg_core_uplinks {
                    let c = cores[((index * self.agg_core_uplinks + u) % self.cores) as usize];
                    net.add_duplex(a, c, self.trunk_bps, self.switch_buffer_bits);
                }
            }

            for seg_in_pod in 0..self.segments_per_pod {
                let segment = pod * self.segments_per_pod + seg_in_pod;
                // One dual-ToR pair per segment; both ToRs reach the shared
                // Agg pool (this is the "typical Clos" of Fig 12a).
                let mut pair_tors = Vec::with_capacity(2);
                for plane in 0..2u8 {
                    let t = net.add_node(NodeKind::Tor {
                        segment,
                        pair: 0,
                        plane,
                    });
                    tors.push(t);
                    pair_tors.push(t);
                    for &a in &pod_aggs {
                        for _ in 0..self.tor_agg_parallel {
                            net.add_duplex(t, a, self.trunk_bps, self.switch_buffer_bits);
                        }
                    }
                }

                for _ in 0..self.hosts_per_segment {
                    let mut host = build_host(&mut net, &self.host, host_id, segment, pod, false);
                    for rail in 0..self.host.rails {
                        for (port, &tor) in pair_tors.iter().enumerate() {
                            attach_nic_port(
                                &mut net,
                                &mut host,
                                rail,
                                port,
                                tor,
                                self.host.nic_port_bps,
                                self.switch_buffer_bits,
                            );
                        }
                    }
                    hosts.push(host);
                    host_id += 1;
                }
            }
        }

        let fabric = Fabric {
            net,
            hosts,
            tors,
            aggs,
            cores,
            kind: FabricKind::DcnPlus,
            dual_tor: true,
            dual_plane: false,
            rail_optimized: false,
            segments: self.pods * self.segments_per_pod,
            pods: self.pods,
            host_params: self.host,
        };
        fabric.net.validate();
        fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_build_names_the_bad_field() {
        let mut cfg = DcnPlusConfig::tiny();
        cfg.cores = 0;
        assert_eq!(cfg.try_build().unwrap_err().field, "cores");
        cfg.cores = 4;
        assert!(cfg.try_build().is_ok());
    }

    #[test]
    fn paper_scale_accounting() {
        let cfg = DcnPlusConfig::paper();
        assert_eq!(cfg.gpus_per_segment(), 128);
        assert_eq!(cfg.gpus_per_pod(), 512);
        assert_eq!(cfg.gpus_per_pod() * cfg.pods, 16384);
    }

    #[test]
    fn tiny_build_inventory() {
        let f = DcnPlusConfig::tiny().build();
        assert_eq!(f.pods, 2);
        assert_eq!(f.segments, 4);
        // 2 ToRs per segment.
        assert_eq!(f.tors.len(), 8);
        assert_eq!(f.aggs.len(), 4);
        assert_eq!(f.cores.len(), 4);
        assert_eq!(f.active_gpu_count(), 2 * 2 * 2 * 2);
    }

    #[test]
    fn all_rails_share_one_tor_pair() {
        let f = DcnPlusConfig::tiny().build();
        let h = &f.hosts[0];
        for rail in 1..h.nics.len() {
            assert_eq!(h.nic_tor[0][0], h.nic_tor[rail][0]);
            assert_eq!(h.nic_tor[0][1], h.nic_tor[rail][1]);
        }
        assert_ne!(h.nic_tor[0][0], h.nic_tor[0][1], "still dual-ToR");
    }

    #[test]
    fn tor_agg_parallel_cables() {
        let cfg = DcnPlusConfig::tiny();
        let f = cfg.build();
        let t = f.tors[0];
        let a = f.plane_aggs(0, 0)[0];
        assert_eq!(
            f.net.links_between(t, a).len(),
            cfg.tor_agg_parallel as usize
        );
        // Total uplinks = aggs × parallel.
        assert_eq!(
            f.tor_uplinks(t).len(),
            (cfg.aggs_per_pod * cfg.tor_agg_parallel) as usize
        );
    }

    #[test]
    fn both_planes_reach_same_agg_pool() {
        // The defining difference from HPN's dual-plane (Fig 12).
        let f = DcnPlusConfig::tiny().build();
        let seg_tors = f.segment_tors(0);
        assert_eq!(seg_tors.len(), 2);
        let dsts = |t| {
            let mut v: Vec<NodeId> = f
                .tor_uplinks(t)
                .iter()
                .map(|&l| f.net.link(l).dst)
                .collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(dsts(seg_tors[0]), dsts(seg_tors[1]));
    }

    #[test]
    fn full_bisection_at_tor() {
        // Paper-scale DCN+ has no oversubscription at the ToR:
        // 128×200G down == 64×400G up.
        let cfg = DcnPlusConfig::paper();
        let down = cfg.hosts_per_segment as f64 * cfg.host.rails as f64 * cfg.host.nic_port_bps;
        let up = (cfg.aggs_per_pod * cfg.tor_agg_parallel) as f64 * cfg.trunk_bps;
        assert_eq!(down, up);
    }
}
