//! Typed fabric-build failures.
//!
//! The builders historically panicked (or divided by zero) on nonsense
//! parameters, which was fine while every config literal lived in this
//! workspace — but scenario files are user input, and a bad
//! `cores_per_plane = 0` must surface as a diagnostic naming the field,
//! not a panic from the middle of the wiring loops. `try_build` returns
//! these; the panicking `build` wrappers remain for the blessed presets.

/// Why a fabric configuration cannot be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError {
    /// The config field at fault (e.g. `"cores_per_plane"`).
    pub field: &'static str,
    /// What is wrong with its value.
    pub reason: String,
}

impl BuildError {
    pub(crate) fn new(field: &'static str, reason: impl Into<String>) -> Self {
        BuildError {
            field,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for BuildError {}

/// Require a count field to be at least one.
pub(crate) fn nonzero(field: &'static str, value: u64) -> Result<(), BuildError> {
    if value == 0 {
        Err(BuildError::new(field, "must be at least 1, got 0"))
    } else {
        Ok(())
    }
}

/// Require a physical quantity to be finite and strictly positive.
pub(crate) fn positive(field: &'static str, value: f64) -> Result<(), BuildError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(BuildError::new(
            field,
            format!("must be finite and > 0, got {value}"),
        ))
    }
}
