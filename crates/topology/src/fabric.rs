//! Common fabric representation shared by all topology builders.
//!
//! A [`Fabric`] is a [`Network`] plus the semantic inventory routing and
//! workload placement need: which nodes are hosts/GPUs/NICs, how hosts group
//! into segments and pods, and which design features (dual-ToR, dual-plane,
//! rail-optimization) the fabric uses.

use crate::graph::{LinkIdx, Network, NodeId, NodeKind};

/// Which builder produced the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FabricKind {
    /// The paper's contribution (§3–§7).
    Hpn,
    /// The previous-generation 3-tier Clos baseline (Appendix C).
    DcnPlus,
    /// Classic fat-tree(k) (Table 1).
    FatTree,
    /// DGX-SuperPod-like 3-tier rail topology (Table 1).
    SuperPod,
    /// The independent frontend network (§8).
    Frontend,
}

/// Per-host construction parameters shared by builders.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostParams {
    /// GPUs (= backend rails) per host. The paper uses 8.
    pub rails: usize,
    /// NVLink bandwidth per direction, bits/s (400GBps bidirectional on
    /// H800 = 1600Gbps per direction).
    pub nvlink_bps: f64,
    /// GPU↔NIC (PCIe Gen5×16) bandwidth per direction, bits/s.
    pub pcie_bps: f64,
    /// One NIC port, bits/s (200Gbps; each NIC has two ports).
    pub nic_port_bps: f64,
    /// Egress buffer for host-side links, bits.
    pub host_buffer_bits: f64,
}

impl HostParams {
    /// Paper-scale host: 8 rails, 400GBps NVLink, PCIe ahead of the
    /// 2×200Gbps NIC.
    pub fn paper() -> Self {
        HostParams {
            rails: 8,
            nvlink_bps: 1600e9,
            pcie_bps: 512e9,
            nic_port_bps: 200e9,
            host_buffer_bits: 64e6 * 8.0,
        }
    }

    /// Miniature host for unit tests: 2 rails, same relative speeds.
    pub fn tiny() -> Self {
        HostParams {
            rails: 2,
            ..Self::paper()
        }
    }

    /// Full-duplex NIC bandwidth across both ports (the 400Gbps of §3).
    pub fn nic_bps(&self) -> f64 {
        2.0 * self.nic_port_bps
    }
}

/// A host: its GPUs, NVSwitch, backend NICs and their ToR attachments.
#[derive(Clone, Debug)]
pub struct Host {
    /// Global host index across the fabric.
    pub id: u32,
    /// Segment this host lives in (global segment index).
    pub segment: u32,
    /// Pod this host lives in.
    pub pod: u32,
    /// Backup hosts hang off the ToRs' reserved ports and do not run jobs
    /// until swapped in (§5.1).
    pub backup: bool,
    /// GPU nodes, indexed by rail.
    pub gpus: Vec<NodeId>,
    /// The intra-host NVLink switch.
    pub nvswitch: NodeId,
    /// Backend NIC nodes, indexed by rail.
    pub nics: Vec<NodeId>,
    /// Per NIC, per port: the uplink to its ToR (`None` for the unused
    /// second port in single-ToR fabrics).
    pub nic_up: Vec<[Option<LinkIdx>; 2]>,
    /// Per NIC, per port: the ToR-to-NIC downlink.
    pub nic_down: Vec<[Option<LinkIdx>; 2]>,
    /// Per NIC, per port: the ToR the port attaches to.
    pub nic_tor: Vec<[Option<NodeId>; 2]>,
}

/// A fabric: graph + inventory + feature flags.
#[derive(Clone, Debug)]
pub struct Fabric {
    /// The wiring graph.
    pub net: Network,
    /// All hosts (active then backup within each segment).
    pub hosts: Vec<Host>,
    /// All ToR switches.
    pub tors: Vec<NodeId>,
    /// All Aggregation switches.
    pub aggs: Vec<NodeId>,
    /// All Core switches.
    pub cores: Vec<NodeId>,
    /// Which builder produced this fabric.
    pub kind: FabricKind,
    /// Whether each NIC attaches to two ToRs (§4).
    pub dual_tor: bool,
    /// Whether tier-2 uses the dual-plane design (§6.1).
    pub dual_plane: bool,
    /// Whether tier-1 is rail-optimized (§5.2).
    pub rail_optimized: bool,
    /// Total segments across all pods.
    pub segments: u32,
    /// Number of pods.
    pub pods: u32,
    /// Host construction parameters used.
    pub host_params: HostParams,
}

impl Fabric {
    /// GPU node for `(host, rail)`.
    pub fn gpu(&self, host: u32, rail: usize) -> NodeId {
        self.hosts[host as usize].gpus[rail]
    }

    /// Hosts that actively run jobs (excludes backups).
    pub fn active_hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(|h| !h.backup)
    }

    /// Number of active (schedulable) GPUs.
    pub fn active_gpu_count(&self) -> usize {
        self.active_hosts().map(|h| h.gpus.len()).sum()
    }

    /// Total GPUs including backups.
    pub fn total_gpu_count(&self) -> usize {
        self.hosts.iter().map(|h| h.gpus.len()).sum()
    }

    /// Active hosts of one segment, in id order.
    pub fn segment_hosts(&self, segment: u32) -> Vec<&Host> {
        self.hosts
            .iter()
            .filter(|h| h.segment == segment && !h.backup)
            .collect()
    }

    /// ToRs serving a segment.
    pub fn segment_tors(&self, segment: u32) -> Vec<NodeId> {
        self.tors
            .iter()
            .copied()
            .filter(
                |&t| matches!(self.net.kind(t), NodeKind::Tor { segment: s, .. } if s == segment),
            )
            .collect()
    }

    /// Aggregation switches of one plane in one pod.
    pub fn plane_aggs(&self, pod: u32, plane: u8) -> Vec<NodeId> {
        self.aggs
            .iter()
            .copied()
            .filter(|&a| {
                matches!(self.net.kind(a), NodeKind::Agg { pod: p, plane: pl, .. }
                    if p == pod && pl == plane)
            })
            .collect()
    }

    /// All ToR→Agg uplinks (handy for monitoring cross-segment traffic).
    pub fn tor_uplinks(&self, tor: NodeId) -> Vec<LinkIdx> {
        self.net
            .out_links_to(tor, |k| matches!(k, NodeKind::Agg { .. }))
    }

    /// Build the fluid-model twin of this fabric's graph, using the
    /// environment's default allocator.
    pub fn to_flownet(&self) -> hpn_sim::FlowNet {
        self.net.to_flownet()
    }

    /// Build the fluid-model twin of this fabric's graph running the given
    /// rate allocator (a session's `SimCtx::allocator()`).
    pub fn to_flownet_with(&self, kind: hpn_sim::AllocatorKind) -> hpn_sim::FlowNet {
        self.net.to_flownet_with(kind)
    }
}

/// Create one host's internal hardware (GPUs, NVSwitch, NICs, PCIe and
/// NVLink cabling). NIC↔ToR wiring is the builder's job; the returned
/// [`Host`] has empty attachment slots sized for `params.rails` NICs.
pub fn build_host(
    net: &mut Network,
    params: &HostParams,
    id: u32,
    segment: u32,
    pod: u32,
    backup: bool,
) -> Host {
    let nvswitch = net.add_node(NodeKind::NvSwitch { host: id });
    let mut gpus = Vec::with_capacity(params.rails);
    let mut nics = Vec::with_capacity(params.rails);
    for rail in 0..params.rails {
        let gpu = net.add_node(NodeKind::Gpu {
            host: id,
            rail: rail as u8,
        });
        let nic = net.add_node(NodeKind::Nic {
            host: id,
            rail: rail as u8,
        });
        net.add_duplex(gpu, nvswitch, params.nvlink_bps, params.host_buffer_bits);
        net.add_duplex(gpu, nic, params.pcie_bps, params.host_buffer_bits);
        gpus.push(gpu);
        nics.push(nic);
    }
    Host {
        id,
        segment,
        pod,
        backup,
        gpus,
        nvswitch,
        nics,
        nic_up: vec![[None; 2]; params.rails],
        nic_down: vec![[None; 2]; params.rails],
        nic_tor: vec![[None; 2]; params.rails],
    }
}

/// Attach one NIC port to a ToR with the standard duplex cable, recording
/// the links in the host's attachment tables.
pub fn attach_nic_port(
    net: &mut Network,
    host: &mut Host,
    rail: usize,
    port: usize,
    tor: NodeId,
    cap_bps: f64,
    tor_buffer_bits: f64,
) {
    assert!(port < 2, "NICs have two ports");
    assert!(
        host.nic_up[rail][port].is_none(),
        "host {} nic {} port {} already wired",
        host.id,
        rail,
        port
    );
    let nic = host.nics[rail];
    let up = net.add_link(nic, tor, cap_bps, tor_buffer_bits);
    let down = net.add_link(tor, nic, cap_bps, tor_buffer_bits);
    host.nic_up[rail][port] = Some(up);
    host.nic_down[rail][port] = Some(down);
    host.nic_tor[rail][port] = Some(tor);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_host_wires_internals() {
        let mut net = Network::new();
        let p = HostParams::paper();
        let h = build_host(&mut net, &p, 0, 0, 0, false);
        assert_eq!(h.gpus.len(), 8);
        assert_eq!(h.nics.len(), 8);
        // Each GPU: duplex to NVSwitch and duplex to its NIC.
        for rail in 0..8 {
            assert!(net.link_between(h.gpus[rail], h.nvswitch).is_some());
            assert!(net.link_between(h.nvswitch, h.gpus[rail]).is_some());
            assert!(net.link_between(h.gpus[rail], h.nics[rail]).is_some());
            assert!(net.link_between(h.nics[rail], h.gpus[rail]).is_some());
        }
        // NVLink faster than NIC: the premise of rail-optimization (§5.2).
        let nv = net.link(net.link_between(h.gpus[0], h.nvswitch).unwrap());
        assert!(nv.cap_bps >= 4.0 * p.nic_bps());
        net.validate();
    }

    #[test]
    fn attach_nic_port_records_links() {
        let mut net = Network::new();
        let p = HostParams::tiny();
        let mut h = build_host(&mut net, &p, 0, 0, 0, false);
        let tor = net.add_node(NodeKind::Tor {
            segment: 0,
            pair: 0,
            plane: 0,
        });
        attach_nic_port(&mut net, &mut h, 0, 0, tor, p.nic_port_bps, 1e6);
        assert!(h.nic_up[0][0].is_some());
        assert!(h.nic_down[0][0].is_some());
        assert_eq!(h.nic_tor[0][0], Some(tor));
        assert!(h.nic_up[0][1].is_none());
        let up = net.link(h.nic_up[0][0].unwrap());
        assert_eq!(up.src, h.nics[0]);
        assert_eq!(up.dst, tor);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_attach_rejected() {
        let mut net = Network::new();
        let p = HostParams::tiny();
        let mut h = build_host(&mut net, &p, 0, 0, 0, false);
        let tor = net.add_node(NodeKind::Tor {
            segment: 0,
            pair: 0,
            plane: 0,
        });
        attach_nic_port(&mut net, &mut h, 0, 0, tor, p.nic_port_bps, 1e6);
        attach_nic_port(&mut net, &mut h, 0, 0, tor, p.nic_port_bps, 1e6);
    }
}
