//! Classic fat-tree(k) (Al-Fares et al., SIGCOMM 2008) — the third
//! comparison row of Table 1.
//!
//! k pods; each pod has k/2 edge (ToR) and k/2 aggregation switches; each
//! edge switch serves k/2 hosts; (k/2)² core switches. Hosts here are
//! single-NIC (the fat-tree paper predates multi-rail GPU hosts), modelled
//! as a 1-rail [`HostParams`]; Table 1 counts one GPU per NIC.

use crate::error::{positive, BuildError};
use crate::fabric::{attach_nic_port, build_host, Fabric, FabricKind, Host, HostParams};
use crate::graph::{Network, NodeId, NodeKind};

/// Number of hosts a fat-tree(k) supports: k³/4.
pub fn fat_tree_hosts(k: u32) -> u32 {
    k * k * k / 4
}

/// Build a fat-tree, or explain which parameter is invalid.
pub fn try_fat_tree(k: u32, link_bps: f64, buffer_bits: f64) -> Result<Fabric, BuildError> {
    if k < 2 || k % 2 != 0 {
        return Err(BuildError {
            field: "k",
            reason: format!("fat-tree k must be even and >= 2, got {k}"),
        });
    }
    positive("link_bps", link_bps)?;
    positive("buffer_bits", buffer_bits)?;
    Ok(fat_tree(k, link_bps, buffer_bits))
}

/// Build a fat-tree with parameter `k` (must be even and ≥ 2).
/// `link_bps` is used for every link (fat-trees are homogeneous).
pub fn fat_tree(k: u32, link_bps: f64, buffer_bits: f64) -> Fabric {
    assert!(k >= 2 && k % 2 == 0, "fat-tree k must be even, got {k}");
    let half = k / 2;
    let mut net = Network::new();
    let mut hosts: Vec<Host> = Vec::new();
    let mut tors: Vec<NodeId> = Vec::new();
    let mut aggs: Vec<NodeId> = Vec::new();
    let mut cores: Vec<NodeId> = Vec::new();

    let host_params = HostParams {
        rails: 1,
        nvlink_bps: link_bps,
        pcie_bps: link_bps,
        nic_port_bps: link_bps,
        host_buffer_bits: buffer_bits,
    };

    // Core layer: (k/2)^2 switches, grouped in k/2 groups of k/2.
    for index in 0..(half * half) as u16 {
        cores.push(net.add_node(NodeKind::Core { plane: 0, index }));
    }

    let mut host_id = 0u32;
    for pod in 0..k {
        let mut pod_aggs = Vec::new();
        for a in 0..half {
            let agg = net.add_node(NodeKind::Agg {
                pod,
                plane: 0,
                index: a as u16,
            });
            pod_aggs.push(agg);
            aggs.push(agg);
            // Agg `a` connects to core group `a` (one link per core in group).
            for c in 0..half {
                let core = cores[(a * half + c) as usize];
                net.add_duplex(agg, core, link_bps, buffer_bits);
            }
        }
        for e in 0..half {
            let segment = pod * half + e;
            let tor = net.add_node(NodeKind::Tor {
                segment,
                pair: 0,
                plane: 0,
            });
            tors.push(tor);
            for &agg in &pod_aggs {
                net.add_duplex(tor, agg, link_bps, buffer_bits);
            }
            for _ in 0..half {
                let mut host = build_host(&mut net, &host_params, host_id, segment, pod, false);
                attach_nic_port(&mut net, &mut host, 0, 0, tor, link_bps, buffer_bits);
                hosts.push(host);
                host_id += 1;
            }
        }
    }

    let fabric = Fabric {
        net,
        hosts,
        tors,
        aggs,
        cores,
        kind: FabricKind::FatTree,
        dual_tor: false,
        dual_plane: false,
        rail_optimized: false,
        segments: k * half,
        pods: k,
        host_params,
    };
    fabric.net.validate();
    fabric
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_count_formula() {
        assert_eq!(fat_tree_hosts(4), 16);
        assert_eq!(fat_tree_hosts(48), 27648, "Table 1's fat-tree row");
    }

    #[test]
    fn k4_structure() {
        let f = fat_tree(4, 10e9, 1e6);
        assert_eq!(f.hosts.len(), 16);
        assert_eq!(f.tors.len(), 8);
        assert_eq!(f.aggs.len(), 8);
        assert_eq!(f.cores.len(), 4);
        // Every edge switch: k/2 hosts down, k/2 aggs up.
        for &t in &f.tors {
            assert_eq!(
                f.net
                    .out_links_to(t, |k| matches!(k, NodeKind::Nic { .. }))
                    .len(),
                2
            );
            assert_eq!(f.tor_uplinks(t).len(), 2);
        }
        // Every core reaches every pod exactly once.
        for &c in &f.cores {
            let pods: Vec<u32> = f
                .net
                .neighbors(c)
                .map(|(n, _)| match f.net.kind(n) {
                    NodeKind::Agg { pod, .. } => pod,
                    k => panic!("core wired to {k:?}"),
                })
                .collect();
            assert_eq!(pods.len(), 4);
            let mut uniq = pods.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_rejected() {
        fat_tree(3, 1e9, 1e6);
    }
}
