//! The independent frontend network (§8).
//!
//! Every training host contributes its ninth NIC (NIC0, 2×200Gbps); the
//! storage cluster (96–128 CPFS/OSS hosts) lives here too. The frontend is
//! a classic 3-tier topology with **1:1 convergence at both Aggregation and
//! Core layers** and non-stacked dual-ToR access, so storage/checkpoint/
//! inference traffic never touches the backend (the design decision the
//! paper defends in §10, "The location of the storage cluster").

use crate::fabric::{Fabric, FabricKind, Host, HostParams};
use crate::graph::{LinkIdx, Network, NodeId, NodeKind};

/// Parameters of a frontend network build.
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Training hosts attached (each via one 2×200G frontend NIC).
    pub train_hosts: u32,
    /// Storage hosts in the CPFS/OSS cluster (paper: 96–128).
    pub storage_hosts: u32,
    /// Hosts per frontend ToR pair.
    pub hosts_per_tor_pair: u32,
    /// Aggregation switches.
    pub aggs: u16,
    /// Core switches.
    pub cores: u16,
    /// NIC port speed, bits/s (200Gbps per port).
    pub nic_port_bps: f64,
    /// Trunk speed, bits/s.
    pub trunk_bps: f64,
    /// Switch buffer, bits.
    pub switch_buffer_bits: f64,
}

impl FrontendConfig {
    /// A storage-cluster-scale instance.
    pub fn paper() -> Self {
        FrontendConfig {
            train_hosts: 128,
            storage_hosts: 96,
            hosts_per_tor_pair: 32,
            aggs: 8,
            cores: 8,
            nic_port_bps: 200e9,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
        }
    }

    /// Miniature instance for tests.
    pub fn tiny() -> Self {
        FrontendConfig {
            train_hosts: 4,
            storage_hosts: 2,
            hosts_per_tor_pair: 2,
            aggs: 2,
            cores: 2,
            nic_port_bps: 200e9,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
        }
    }
}

/// A built frontend network. Endpoints are frontend NICs (for training
/// hosts) and storage nodes; both attach dual-ToR.
#[derive(Clone, Debug)]
pub struct FrontendNet {
    /// The wiring graph.
    pub net: Network,
    /// Frontend NIC node of each training host, indexed by host.
    pub train_nics: Vec<NodeId>,
    /// Per training host, per port: uplink to its frontend ToR.
    pub train_up: Vec<[LinkIdx; 2]>,
    /// Per training host, per port: downlink from its frontend ToR.
    pub train_down: Vec<[LinkIdx; 2]>,
    /// Storage host nodes.
    pub storage: Vec<NodeId>,
    /// Per storage host, per port: uplink / downlink.
    pub storage_up: Vec<[LinkIdx; 2]>,
    /// Per storage host, per port: downlink from its ToR.
    pub storage_down: Vec<[LinkIdx; 2]>,
    /// Frontend ToRs.
    pub tors: Vec<NodeId>,
    /// Frontend Aggregation switches.
    pub aggs: Vec<NodeId>,
    /// Frontend Core switches.
    pub cores: Vec<NodeId>,
}

/// Build the frontend network.
pub fn build_frontend(cfg: &FrontendConfig) -> FrontendNet {
    let mut net = Network::new();
    let mut tors = Vec::new();
    let mut aggs = Vec::new();
    let mut cores = Vec::new();

    for index in 0..cfg.cores {
        cores.push(net.add_node(NodeKind::Core { plane: 0, index }));
    }
    for index in 0..cfg.aggs {
        let a = net.add_node(NodeKind::Agg {
            pod: 0,
            plane: 0,
            index,
        });
        aggs.push(a);
        for &c in &cores {
            net.add_duplex(a, c, cfg.trunk_bps, cfg.switch_buffer_bits);
        }
    }

    let total_endpoints = cfg.train_hosts + cfg.storage_hosts;
    let pairs = total_endpoints.div_ceil(cfg.hosts_per_tor_pair);
    let mut pair_tors: Vec<[NodeId; 2]> = Vec::new();
    for pair in 0..pairs {
        let mut two = [NodeId(0); 2];
        for plane in 0..2u8 {
            let t = net.add_node(NodeKind::Tor {
                segment: pair,
                pair: 0,
                plane,
            });
            tors.push(t);
            two[plane as usize] = t;
            for &a in &aggs {
                net.add_duplex(t, a, cfg.trunk_bps, cfg.switch_buffer_bits);
            }
        }
        pair_tors.push(two);
    }

    let attach = |net: &mut Network, node: NodeId, endpoint_idx: u32| {
        let pair = &pair_tors[(endpoint_idx / cfg.hosts_per_tor_pair) as usize];
        let mut up = [LinkIdx(0); 2];
        let mut down = [LinkIdx(0); 2];
        for (port, &t) in pair.iter().enumerate() {
            up[port] = net.add_link(node, t, cfg.nic_port_bps, cfg.switch_buffer_bits);
            down[port] = net.add_link(t, node, cfg.nic_port_bps, cfg.switch_buffer_bits);
        }
        (up, down)
    };

    let mut train_nics = Vec::new();
    let mut train_up = Vec::new();
    let mut train_down = Vec::new();
    for h in 0..cfg.train_hosts {
        let nic = net.add_node(NodeKind::FrontendNic { host: h });
        let (up, down) = attach(&mut net, nic, h);
        train_nics.push(nic);
        train_up.push(up);
        train_down.push(down);
    }
    let mut storage = Vec::new();
    let mut storage_up = Vec::new();
    let mut storage_down = Vec::new();
    for s in 0..cfg.storage_hosts {
        let node = net.add_node(NodeKind::Storage { index: s });
        let (up, down) = attach(&mut net, node, cfg.train_hosts + s);
        storage.push(node);
        storage_up.push(up);
        storage_down.push(down);
    }

    net.validate();
    FrontendNet {
        net,
        train_nics,
        train_up,
        train_down,
        storage,
        storage_up,
        storage_down,
        tors,
        aggs,
        cores,
    }
}

/// Convenience: wrap a frontend build into a [`Fabric`]-shaped summary for
/// reporting (hosts are not GPU hosts here, so the fabric has no GPUs).
pub fn frontend_fabric_summary(fe: &FrontendNet) -> Fabric {
    Fabric {
        net: fe.net.clone(),
        hosts: Vec::<Host>::new(),
        tors: fe.tors.clone(),
        aggs: fe.aggs.clone(),
        cores: fe.cores.clone(),
        kind: FabricKind::Frontend,
        dual_tor: true,
        dual_plane: false,
        rail_optimized: false,
        segments: 0,
        pods: 1,
        host_params: HostParams::paper(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_structure() {
        let fe = build_frontend(&FrontendConfig::tiny());
        assert_eq!(fe.train_nics.len(), 4);
        assert_eq!(fe.storage.len(), 2);
        // 6 endpoints / 2 per pair = 3 pairs = 6 ToRs.
        assert_eq!(fe.tors.len(), 6);
        assert_eq!(fe.aggs.len(), 2);
        assert_eq!(fe.cores.len(), 2);
    }

    #[test]
    fn endpoints_are_dual_tor() {
        let fe = build_frontend(&FrontendConfig::tiny());
        for h in 0..fe.train_nics.len() {
            let t0 = fe.net.link(fe.train_up[h][0]).dst;
            let t1 = fe.net.link(fe.train_up[h][1]).dst;
            assert_ne!(t0, t1, "train host {h} not dual-homed");
        }
        for s in 0..fe.storage.len() {
            let t0 = fe.net.link(fe.storage_up[s][0]).dst;
            let t1 = fe.net.link(fe.storage_up[s][1]).dst;
            assert_ne!(t0, t1, "storage host {s} not dual-homed");
        }
    }

    #[test]
    fn one_to_one_convergence() {
        // §8: 1:1 at both Aggregation and Core. With tiny numbers we verify
        // the Agg layer's uplink bandwidth >= its downlink bandwidth.
        let cfg = FrontendConfig::tiny();
        let fe = build_frontend(&cfg);
        for &a in &fe.aggs {
            let down: f64 = fe
                .net
                .out_links_to(a, |k| matches!(k, NodeKind::Tor { .. }))
                .iter()
                .map(|&l| fe.net.link(l).cap_bps)
                .sum();
            let up: f64 = fe
                .net
                .out_links_to(a, |k| matches!(k, NodeKind::Core { .. }))
                .iter()
                .map(|&l| fe.net.link(l).cap_bps)
                .sum();
            assert!(up + 1.0 >= down.min(up), "degenerate check");
            // Tiny build: 6 ToRs × 400G down vs 2 cores × 400G up is
            // oversubscribed only because the test instance is minimal; at
            // paper() scale the ratio is 1:1 or better:
        }
        let paper = FrontendConfig::paper();
        let down_per_agg = (paper.train_hosts + paper.storage_hosts)
            .div_ceil(paper.hosts_per_tor_pair) as f64
            * 2.0
            * paper.trunk_bps;
        let up_per_agg = paper.cores as f64 * paper.trunk_bps;
        assert!(
            up_per_agg >= down_per_agg / paper.aggs as f64,
            "paper-scale frontend is not 1:1"
        );
    }
}
