//! Typed directed network graph.
//!
//! Nodes carry their role in the fabric ([`NodeKind`]); links are directed
//! (one per direction of a physical cable) so they map one-to-one onto
//! [`hpn_sim::FlowNet`] links, with `LinkIdx(i)` ↔ `LinkId(i)`.

use hpn_sim::{FlowNet, LinkId};

/// Index of a node in a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of a directed link in a [`Network`]. Identical numbering to the
/// [`LinkId`]s of the `FlowNet` produced by [`Network::to_flownet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkIdx(pub u32);

impl LinkIdx {
    /// The corresponding fluid-model link.
    pub fn flow_link(self) -> LinkId {
        LinkId(self.0)
    }
}

/// The role a node plays in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// A GPU.
    Gpu {
        /// Owning host.
        host: u32,
        /// Rail (index within the host, 0..8).
        rail: u8,
    },
    /// The intra-host NVLink switch fabric connecting the 8 GPUs.
    NvSwitch {
        /// Owning host.
        host: u32,
    },
    /// A backend-network NIC serving one rail of one host (2×200Gbps).
    Nic {
        /// Owning host.
        host: u32,
        /// Rail this NIC serves.
        rail: u8,
    },
    /// A frontend-network NIC (NIC0 in Fig 7).
    FrontendNic {
        /// Owning host.
        host: u32,
    },
    /// Top-of-Rack switch.
    Tor {
        /// Segment the ToR serves.
        segment: u32,
        /// Dual-ToR set within the segment (equals the rail in
        /// rail-optimized fabrics).
        pair: u8,
        /// Plane (0/1) in the dual-plane design — NIC port p lands here.
        plane: u8,
    },
    /// Aggregation-layer switch.
    Agg {
        /// Pod the switch belongs to.
        pod: u32,
        /// Plane (0/1) in the dual-plane design.
        plane: u8,
        /// Index within the pod's plane.
        index: u16,
    },
    /// Core-layer switch.
    Core {
        /// Plane (0/1); §7 carries the dual-plane into the Core layer.
        plane: u8,
        /// Index within the plane.
        index: u16,
    },
    /// A storage host in the frontend CPFS/OSS cluster.
    Storage {
        /// Index within the storage cluster.
        index: u32,
    },
}

impl NodeKind {
    /// True for switches (ToR/Agg/Core), false for endpoints.
    pub fn is_switch(self) -> bool {
        matches!(
            self,
            NodeKind::Tor { .. } | NodeKind::Agg { .. } | NodeKind::Core { .. }
        )
    }

    /// Short human-readable name for diagnostics.
    pub fn label(self) -> String {
        match self {
            NodeKind::Gpu { host, rail } => format!("host{host}/gpu{rail}"),
            NodeKind::NvSwitch { host } => format!("host{host}/nvswitch"),
            NodeKind::Nic { host, rail } => format!("host{host}/nic{rail}"),
            NodeKind::FrontendNic { host } => format!("host{host}/nic0"),
            NodeKind::Tor {
                segment,
                pair,
                plane,
            } => format!("seg{segment}/tor{pair}.{plane}"),
            NodeKind::Agg { pod, plane, index } => format!("pod{pod}/agg{index}.p{plane}"),
            NodeKind::Core { plane, index } => format!("core{index}.p{plane}"),
            NodeKind::Storage { index } => format!("storage{index}"),
        }
    }
}

/// A directed link: traffic flows `src -> dst`.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Capacity in bits/s.
    pub cap_bps: f64,
    /// Egress queue buffer at `src` for this port, in bits.
    pub buffer_bits: f64,
}

/// A directed multigraph of fabric nodes.
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    out_adj: Vec<Vec<u32>>, // outgoing link indices per node
    in_adj: Vec<Vec<u32>>,  // incoming link indices per node
}

impl Network {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node of the given kind, returning its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add a directed link. `buffer_bits` is the egress buffer of the
    /// transmitting port.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        cap_bps: f64,
        buffer_bits: f64,
    ) -> LinkIdx {
        assert!(src != dst, "self-loop link at {:?}", self.kind(src).label());
        let idx = LinkIdx(self.links.len() as u32);
        self.links.push(Link {
            src,
            dst,
            cap_bps,
            buffer_bits,
        });
        self.out_adj[src.0 as usize].push(idx.0);
        self.in_adj[dst.0 as usize].push(idx.0);
        idx
    }

    /// Add both directions of a physical cable; returns `(a->b, b->a)`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        cap_bps: f64,
        buffer_bits: f64,
    ) -> (LinkIdx, LinkIdx) {
        (
            self.add_link(a, b, cap_bps, buffer_bits),
            self.add_link(b, a, cap_bps, buffer_bits),
        )
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0 as usize]
    }

    /// A link by index.
    pub fn link(&self, l: LinkIdx) -> Link {
        self.links[l.0 as usize]
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, n: NodeId) -> impl Iterator<Item = LinkIdx> + '_ {
        self.out_adj[n.0 as usize].iter().map(|&i| LinkIdx(i))
    }

    /// Incoming links of a node.
    pub fn in_links(&self, n: NodeId) -> impl Iterator<Item = LinkIdx> + '_ {
        self.in_adj[n.0 as usize].iter().map(|&i| LinkIdx(i))
    }

    /// Outgoing neighbors with the link used to reach them.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, LinkIdx)> + '_ {
        self.out_links(n)
            .map(move |l| (self.links[l.0 as usize].dst, l))
    }

    /// The first directed link from `a` to `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkIdx> {
        self.out_links(a)
            .find(|&l| self.links[l.0 as usize].dst == b)
    }

    /// All directed links from `a` to `b` (parallel links are real in these
    /// fabrics — e.g. multiple ToR-Agg cables in scaled-down builds).
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkIdx> {
        self.out_links(a)
            .filter(|&l| self.links[l.0 as usize].dst == b)
            .collect()
    }

    /// All nodes of a kind selected by predicate.
    pub fn nodes_where(&self, pred: impl Fn(NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, &k)| pred(k))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Outgoing links whose destination satisfies the predicate — e.g. a
    /// ToR's uplinks are `out_links_to(tor, |k| matches!(k, Agg{..}))`.
    pub fn out_links_to(&self, n: NodeId, pred: impl Fn(NodeKind) -> bool) -> Vec<LinkIdx> {
        self.out_links(n)
            .filter(|&l| pred(self.kind(self.links[l.0 as usize].dst)))
            .collect()
    }

    /// Materialise this graph as a fluid network. Link indices are
    /// preserved: `LinkIdx(i)` becomes `LinkId(i)`. Uses the environment's
    /// default allocator; sessions with an explicit context use
    /// [`Network::to_flownet_with`].
    pub fn to_flownet(&self) -> FlowNet {
        self.to_flownet_with(hpn_sim::AllocatorKind::from_env())
    }

    /// Materialise this graph as a fluid network running the given rate
    /// allocator (the `SimCtx::allocator()` of the session under
    /// construction). Link indices are preserved: `LinkIdx(i)` becomes
    /// `LinkId(i)`.
    pub fn to_flownet_with(&self, kind: hpn_sim::AllocatorKind) -> FlowNet {
        let mut net = FlowNet::with_allocator(kind);
        for l in &self.links {
            let id = net.add_link(l.cap_bps, l.buffer_bits);
            debug_assert_eq!(id.0 as usize, net.link_count() - 1);
        }
        net
    }

    /// Sanity-check structural invariants; called by builders' tests.
    ///
    /// Verifies that every link's endpoints exist and that endpoint nodes
    /// (GPU/NIC) never connect directly to the Aggregation or Core layers.
    pub fn validate(&self) {
        for (i, l) in self.links.iter().enumerate() {
            assert!(
                (l.src.0 as usize) < self.nodes.len() && (l.dst.0 as usize) < self.nodes.len(),
                "link {i} has dangling endpoint"
            );
            assert!(l.cap_bps > 0.0, "link {i} has zero capacity");
            let (ks, kd) = (self.kind(l.src), self.kind(l.dst));
            let host_side = |k: NodeKind| {
                matches!(
                    k,
                    NodeKind::Gpu { .. }
                        | NodeKind::NvSwitch { .. }
                        | NodeKind::Nic { .. }
                        | NodeKind::FrontendNic { .. }
                )
            };
            let upper = |k: NodeKind| matches!(k, NodeKind::Agg { .. } | NodeKind::Core { .. });
            assert!(
                !(host_side(ks) && upper(kd) || upper(ks) && host_side(kd)),
                "link {i} wires host hardware {} directly to {}",
                ks.label(),
                kd.label()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let nic = net.add_node(NodeKind::Nic { host: 0, rail: 0 });
        let tor0 = net.add_node(NodeKind::Tor {
            segment: 0,
            pair: 0,
            plane: 0,
        });
        let tor1 = net.add_node(NodeKind::Tor {
            segment: 0,
            pair: 0,
            plane: 1,
        });
        net.add_duplex(nic, tor0, 200e9, 1e6);
        net.add_duplex(nic, tor1, 200e9, 1e6);
        (net, nic, tor0, tor1)
    }

    #[test]
    fn duplex_creates_both_directions() {
        let (net, nic, tor0, _) = tiny();
        assert_eq!(net.link_count(), 4);
        assert!(net.link_between(nic, tor0).is_some());
        assert!(net.link_between(tor0, nic).is_some());
        let up = net.link_between(nic, tor0).unwrap();
        assert_ne!(up, net.link_between(tor0, nic).unwrap());
    }

    #[test]
    fn adjacency_queries() {
        let (net, nic, tor0, tor1) = tiny();
        let outs: Vec<NodeId> = net.neighbors(nic).map(|(n, _)| n).collect();
        assert_eq!(outs, vec![tor0, tor1]);
        assert_eq!(net.in_links(nic).count(), 2);
        assert_eq!(
            net.out_links_to(nic, |k| matches!(k, NodeKind::Tor { plane: 1, .. }))
                .len(),
            1
        );
    }

    #[test]
    fn nodes_where_filters_by_kind() {
        let (net, _, _, _) = tiny();
        assert_eq!(
            net.nodes_where(|k| matches!(k, NodeKind::Tor { .. })).len(),
            2
        );
        assert_eq!(
            net.nodes_where(|k| matches!(k, NodeKind::Agg { .. })).len(),
            0
        );
    }

    #[test]
    fn to_flownet_preserves_indices() {
        let (net, nic, tor0, _) = tiny();
        let mut fnet = net.to_flownet();
        assert_eq!(fnet.link_count(), net.link_count());
        let l = net.link_between(nic, tor0).unwrap();
        assert_eq!(fnet.link(l.flow_link()).nominal_bps, 200e9);
        // The flownet is usable immediately.
        fnet.recompute_if_dirty();
    }

    #[test]
    fn labels_are_stable() {
        let (net, nic, tor0, _) = tiny();
        assert_eq!(net.kind(nic).label(), "host0/nic0");
        assert_eq!(net.kind(tor0).label(), "seg0/tor0.0");
    }

    #[test]
    fn validate_accepts_wellformed() {
        let (net, _, _, _) = tiny();
        net.validate();
    }

    #[test]
    #[should_panic(expected = "wires host hardware")]
    fn validate_rejects_nic_to_agg() {
        let mut net = Network::new();
        let nic = net.add_node(NodeKind::Nic { host: 0, rail: 0 });
        let agg = net.add_node(NodeKind::Agg {
            pod: 0,
            plane: 0,
            index: 0,
        });
        net.add_link(nic, agg, 1e9, 1e6);
        net.validate();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut net = Network::new();
        let n = net.add_node(NodeKind::Storage { index: 0 });
        net.add_link(n, n, 1e9, 1e6);
    }

    #[test]
    fn parallel_links_supported() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Tor {
            segment: 0,
            pair: 0,
            plane: 0,
        });
        let b = net.add_node(NodeKind::Agg {
            pod: 0,
            plane: 0,
            index: 0,
        });
        net.add_link(a, b, 400e9, 1e6);
        net.add_link(a, b, 400e9, 1e6);
        assert_eq!(net.links_between(a, b).len(), 2);
    }
}
