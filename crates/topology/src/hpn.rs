//! The HPN fabric builder — the paper's contribution (§3, §5, §6, §7).
//!
//! Structure at paper scale:
//!
//! * **Tier 1 (segment, §5):** 128 active + 8 backup hosts, 8 GPUs each.
//!   Rail-optimized: NIC `r` of every host attaches to the rail-`r` dual-ToR
//!   pair, port 0 to the plane-0 ToR and port 1 to the plane-1 ToR. Each ToR
//!   is a 51.2Tbps single chip: (128+8)×200Gbps down, 60×400Gbps up
//!   (1.067:1 oversubscription over the active hosts).
//! * **Tier 2 (pod, §6):** dual-plane. The plane-p ToRs of all 15 segments
//!   connect to all 60 plane-p Aggregation switches (one 400G cable each).
//!   A pod therefore carries 15×1024 = 15,360 GPUs.
//! * **Tier 3 (§7):** each Aggregation switch has 8×400G uplinks to Core
//!   switches of its own plane (15:1 oversubscription), shared across pods.
//!
//! Feature flags (`dual_tor`, `dual_plane`, `rail_optimized`) switch the
//! builder into the ablation variants used throughout the evaluation:
//! single-ToR access (Fig 18 baseline), typical-Clos tier-2 (Fig 13a/14a),
//! and non-rail-optimized tier-1.

// Index loops mirror the paper's (host, rail, plane) notation; iterator
// adaptors would obscure the wiring math.
#![allow(clippy::needless_range_loop)]

use crate::error::{nonzero, positive, BuildError};
use crate::fabric::{attach_nic_port, build_host, Fabric, FabricKind, Host, HostParams};
use crate::graph::{Network, NodeId, NodeKind};

/// Parameters of an HPN build. All counts are per the paper unless scaled
/// down for tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HpnConfig {
    /// Number of pods (tier-3 interconnects them).
    pub pods: u32,
    /// Segments per pod (paper: 15).
    pub segments_per_pod: u32,
    /// Active hosts per segment (paper: 128).
    pub hosts_per_segment: u32,
    /// Backup hosts per segment on the ToRs' reserved ports (paper: 8).
    pub backup_hosts_per_segment: u32,
    /// ToR→Agg links per ToR = Aggregation switches per plane (paper: 60).
    pub aggs_per_plane: u16,
    /// Core uplinks per Aggregation switch (paper: 8; yields 15:1 oversub).
    pub agg_core_uplinks: u16,
    /// Core switches per plane (shared by all pods).
    pub cores_per_plane: u16,
    /// ToR/Agg/Core port speed towards the upper layer, bits/s (400Gbps).
    pub trunk_bps: f64,
    /// Egress buffer on switch ports, bits. Sized so that a persistently
    /// congested port in the typical-Clos ablation saturates in the few
    /// hundred KB range the paper's Fig 14 reports.
    pub switch_buffer_bits: f64,
    /// Enable dual-ToR access (§4). Off = single-ToR baseline.
    pub dual_tor: bool,
    /// Enable dual-plane tier-2 (§6.1). Off = typical Clos tier-2.
    pub dual_plane: bool,
    /// Enable rail-optimized tier-1 (§5.2). Off = all NICs of a host share
    /// one dual-ToR pair.
    pub rail_optimized: bool,
    /// Host hardware parameters.
    pub host: HostParams,
}

impl HpnConfig {
    /// Full paper-scale configuration: one pod of 15,360 GPUs.
    pub fn paper() -> Self {
        HpnConfig {
            pods: 1,
            segments_per_pod: 15,
            hosts_per_segment: 128,
            backup_hosts_per_segment: 8,
            aggs_per_plane: 60,
            agg_core_uplinks: 8,
            cores_per_plane: 64,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            dual_tor: true,
            dual_plane: true,
            rail_optimized: true,
            host: HostParams::paper(),
        }
    }

    /// Miniature configuration with identical structure for unit tests:
    /// 2 segments × 4 hosts × 2 rails.
    pub fn tiny() -> Self {
        HpnConfig {
            pods: 1,
            segments_per_pod: 2,
            hosts_per_segment: 4,
            backup_hosts_per_segment: 1,
            aggs_per_plane: 4,
            agg_core_uplinks: 2,
            cores_per_plane: 4,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            dual_tor: true,
            dual_plane: true,
            rail_optimized: true,
            host: HostParams::tiny(),
        }
    }

    /// A mid-size configuration (hundreds of GPUs) for experiments that
    /// don't need a full pod — structure identical to `paper()`.
    pub fn medium() -> Self {
        HpnConfig {
            pods: 1,
            segments_per_pod: 4,
            hosts_per_segment: 16,
            backup_hosts_per_segment: 1,
            aggs_per_plane: 8,
            agg_core_uplinks: 2,
            cores_per_plane: 8,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            dual_tor: true,
            dual_plane: true,
            rail_optimized: true,
            host: HostParams::paper(),
        }
    }

    /// GPUs per segment this config yields.
    pub fn gpus_per_segment(&self) -> u32 {
        self.hosts_per_segment * self.host.rails as u32
    }

    /// Active GPUs per pod.
    pub fn gpus_per_pod(&self) -> u32 {
        self.gpus_per_segment() * self.segments_per_pod
    }

    /// Tier-1 oversubscription over active hosts, as the paper computes it
    /// (downstream NIC bandwidth vs ToR uplink bandwidth).
    pub fn tier1_oversubscription(&self) -> f64 {
        let down = self.hosts_per_segment as f64 * self.host.nic_port_bps;
        let up = self.aggs_per_plane as f64 * self.trunk_bps;
        down / up
    }

    /// Aggregation→Core oversubscription (paper: 15:1).
    pub fn agg_core_oversubscription(&self) -> f64 {
        // Per Agg: downstream = one 400G link per ToR of its plane in its
        // pod; upstream = agg_core_uplinks × 400G.
        let tors_per_plane = self.segments_per_pod as f64 * self.rails_per_segment() as f64;
        tors_per_plane / self.agg_core_uplinks as f64
    }

    fn rails_per_segment(&self) -> usize {
        if self.rail_optimized {
            self.host.rails
        } else {
            1
        }
    }

    /// Check every field a scenario file could have set. The wiring loops
    /// below index with these counts, so a zero would otherwise surface as
    /// a division-by-zero or an empty fabric deep inside the build.
    pub fn validate(&self) -> Result<(), BuildError> {
        nonzero("pods", self.pods as u64)?;
        nonzero("segments_per_pod", self.segments_per_pod as u64)?;
        nonzero("hosts_per_segment", self.hosts_per_segment as u64)?;
        nonzero("aggs_per_plane", self.aggs_per_plane as u64)?;
        nonzero("agg_core_uplinks", self.agg_core_uplinks as u64)?;
        nonzero("cores_per_plane", self.cores_per_plane as u64)?;
        nonzero("host.rails", self.host.rails as u64)?;
        positive("trunk_bps", self.trunk_bps)?;
        positive("switch_buffer_bits", self.switch_buffer_bits)?;
        positive("host.nvlink_bps", self.host.nvlink_bps)?;
        positive("host.pcie_bps", self.host.pcie_bps)?;
        positive("host.nic_port_bps", self.host.nic_port_bps)?;
        positive("host.host_buffer_bits", self.host.host_buffer_bits)?;
        Ok(())
    }

    /// Build the fabric, or explain which field is invalid.
    pub fn try_build(&self) -> Result<Fabric, BuildError> {
        self.validate()?;
        Ok(self.build_unchecked())
    }

    /// Build the fabric. Panics on an invalid configuration — use
    /// [`HpnConfig::try_build`] when the config came from user input.
    pub fn build(&self) -> Fabric {
        match self.try_build() {
            Ok(f) => f,
            Err(e) => panic!("HpnConfig::build: {e}"),
        }
    }

    fn build_unchecked(&self) -> Fabric {
        let mut net = Network::new();
        let mut hosts: Vec<Host> = Vec::new();
        let mut tors: Vec<NodeId> = Vec::new();
        let mut aggs: Vec<NodeId> = Vec::new();
        let mut cores: Vec<NodeId> = Vec::new();

        let planes: u8 = if self.dual_tor { 2 } else { 1 };
        let pairs = self.rails_per_segment();
        // Per-port NIC speed: with a single ToR the two 200G ports bond
        // into one 400G cable (§4, single-ToR description).
        let port_bps = if self.dual_tor {
            self.host.nic_port_bps
        } else {
            2.0 * self.host.nic_port_bps
        };

        // Core layer, shared across pods, one set per plane.
        for plane in 0..planes {
            for index in 0..self.cores_per_plane {
                cores.push(net.add_node(NodeKind::Core { plane, index }));
            }
        }
        let core_at = |plane: u8, index: u16| -> NodeId {
            cores[plane as usize * self.cores_per_plane as usize + index as usize]
        };

        let mut host_id: u32 = 0;
        for pod in 0..self.pods {
            // Aggregation layer of this pod.
            let agg_planes: u8 = if self.dual_plane { planes } else { 1 };
            let mut pod_aggs: Vec<Vec<NodeId>> = vec![Vec::new(); agg_planes as usize];
            for plane in 0..agg_planes {
                for index in 0..self.aggs_per_plane {
                    let a = net.add_node(NodeKind::Agg { pod, plane, index });
                    pod_aggs[plane as usize].push(a);
                    aggs.push(a);
                    // Agg → Core uplinks, staying inside the plane (§7
                    // carries dual-plane into the Core layer). In the
                    // non-dual-plane ablation all aggs use plane-0 cores.
                    for u in 0..self.agg_core_uplinks {
                        let cidx = (index * self.agg_core_uplinks + u) % self.cores_per_plane;
                        let c = core_at(plane, cidx);
                        net.add_duplex(a, c, self.trunk_bps, self.switch_buffer_bits);
                    }
                }
            }

            for seg_in_pod in 0..self.segments_per_pod {
                let segment = pod * self.segments_per_pod + seg_in_pod;
                // ToRs of this segment: one pair per rail (rail-optimized)
                // or a single pair for the whole host (ablation).
                let mut seg_tors: Vec<Vec<NodeId>> = Vec::with_capacity(pairs);
                for pair in 0..pairs {
                    let mut per_plane = Vec::with_capacity(planes as usize);
                    for plane in 0..planes {
                        let t = net.add_node(NodeKind::Tor {
                            segment,
                            pair: pair as u8,
                            plane,
                        });
                        tors.push(t);
                        per_plane.push(t);
                        // ToR → Agg: one 400G cable to every Agg of the
                        // ToR's plane (dual-plane) or of the shared pool.
                        let agg_plane = if self.dual_plane { plane } else { 0 };
                        for &a in &pod_aggs[agg_plane as usize] {
                            net.add_duplex(t, a, self.trunk_bps, self.switch_buffer_bits);
                        }
                    }
                    seg_tors.push(per_plane);
                }

                // Hosts: active first, then backups.
                let total_hosts = self.hosts_per_segment + self.backup_hosts_per_segment;
                for h in 0..total_hosts {
                    let backup = h >= self.hosts_per_segment;
                    let mut host = build_host(&mut net, &self.host, host_id, segment, pod, backup);
                    for rail in 0..self.host.rails {
                        let pair = if self.rail_optimized { rail } else { 0 };
                        for (port, &tor) in seg_tors[pair].iter().enumerate() {
                            attach_nic_port(
                                &mut net,
                                &mut host,
                                rail,
                                port,
                                tor,
                                port_bps,
                                self.switch_buffer_bits,
                            );
                        }
                    }
                    hosts.push(host);
                    host_id += 1;
                }
            }
        }

        let fabric = Fabric {
            net,
            hosts,
            tors,
            aggs,
            cores,
            kind: FabricKind::Hpn,
            dual_tor: self.dual_tor,
            dual_plane: self.dual_plane,
            rail_optimized: self.rail_optimized,
            segments: self.pods * self.segments_per_pod,
            pods: self.pods,
            host_params: self.host,
        };
        fabric.net.validate();
        fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_build_names_the_bad_field() {
        let mut cfg = HpnConfig::tiny();
        cfg.cores_per_plane = 0;
        let err = cfg.try_build().unwrap_err();
        assert_eq!(err.field, "cores_per_plane");
        cfg.cores_per_plane = 4;
        cfg.trunk_bps = f64::NAN;
        assert_eq!(cfg.try_build().unwrap_err().field, "trunk_bps");
        cfg.trunk_bps = 400e9;
        assert!(cfg.try_build().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid `hosts_per_segment`")]
    fn build_panics_with_the_field_name() {
        let mut cfg = HpnConfig::tiny();
        cfg.hosts_per_segment = 0;
        cfg.build();
    }

    #[test]
    fn tiny_build_inventory() {
        let cfg = HpnConfig::tiny();
        let f = cfg.build();
        // 2 segments × (4+1) hosts.
        assert_eq!(f.hosts.len(), 10);
        assert_eq!(f.active_hosts().count(), 8);
        // 2 rails × 2 planes × 2 segments = 8 ToRs.
        assert_eq!(f.tors.len(), 8);
        // 2 planes × 4 aggs.
        assert_eq!(f.aggs.len(), 8);
        assert_eq!(f.cores.len(), 8);
        assert_eq!(f.active_gpu_count(), 16);
        assert_eq!(f.total_gpu_count(), 20);
    }

    #[test]
    fn rail_optimized_wiring() {
        let f = HpnConfig::tiny().build();
        let h = &f.hosts[0];
        // NIC r port p attaches to the rail-r pair, plane-p ToR.
        for rail in 0..2 {
            for port in 0..2 {
                let tor = h.nic_tor[rail][port].expect("wired");
                match f.net.kind(tor) {
                    NodeKind::Tor {
                        segment,
                        pair,
                        plane,
                    } => {
                        assert_eq!(segment, 0);
                        assert_eq!(pair as usize, rail, "rail-optimized pairing");
                        assert_eq!(plane as usize, port, "port p → plane p");
                    }
                    k => panic!("NIC wired to {k:?}"),
                }
            }
        }
        // Dual-ToR: the two ports reach two different switches.
        assert_ne!(h.nic_tor[0][0], h.nic_tor[0][1]);
    }

    #[test]
    fn dual_plane_isolation() {
        // A plane-0 ToR must reach only plane-0 Aggs.
        let f = HpnConfig::tiny().build();
        for &t in &f.tors {
            let NodeKind::Tor { plane, .. } = f.net.kind(t) else {
                unreachable!()
            };
            for l in f.tor_uplinks(t) {
                let agg = f.net.link(l).dst;
                let NodeKind::Agg { plane: ap, .. } = f.net.kind(agg) else {
                    panic!("uplink not to an Agg")
                };
                assert_eq!(ap, plane, "plane isolation violated");
            }
        }
    }

    #[test]
    fn clos_ablation_shares_aggs() {
        let mut cfg = HpnConfig::tiny();
        cfg.dual_plane = false;
        let f = cfg.build();
        // Single shared pool of aggs.
        assert_eq!(f.aggs.len(), 4);
        // Every ToR (both planes) reaches every Agg.
        for &t in &f.tors {
            assert_eq!(f.tor_uplinks(t).len(), 4);
        }
    }

    #[test]
    fn single_tor_ablation() {
        let mut cfg = HpnConfig::tiny();
        cfg.dual_tor = false;
        let f = cfg.build();
        let h = &f.hosts[0];
        // Only port 0 is wired, at double speed (bonded cable).
        assert!(h.nic_up[0][0].is_some());
        assert!(h.nic_up[0][1].is_none());
        let up = f.net.link(h.nic_up[0][0].unwrap());
        assert_eq!(up.cap_bps, 400e9);
        // Half the ToRs of the dual design.
        assert_eq!(f.tors.len(), 4);
    }

    #[test]
    fn non_rail_optimized_ablation() {
        let mut cfg = HpnConfig::tiny();
        cfg.rail_optimized = false;
        let f = cfg.build();
        // One pair per segment: 1 pair × 2 planes × 2 segments.
        assert_eq!(f.tors.len(), 4);
        let h = &f.hosts[0];
        // Both rails share the same ToR pair.
        assert_eq!(h.nic_tor[0][0], h.nic_tor[1][0]);
        assert_eq!(h.nic_tor[0][1], h.nic_tor[1][1]);
    }

    #[test]
    fn paper_scale_accounting_without_building() {
        let cfg = HpnConfig::paper();
        assert_eq!(cfg.gpus_per_segment(), 1024);
        assert_eq!(cfg.gpus_per_pod(), 15360);
        let o = cfg.tier1_oversubscription();
        assert!((o - 1.0667).abs() < 1e-3, "tier1 oversub {o}");
        let oc = cfg.agg_core_oversubscription();
        assert!((oc - 15.0).abs() < 1e-9, "agg-core oversub {oc}");
    }

    #[test]
    fn medium_build_structure() {
        let f = HpnConfig::medium().build();
        assert_eq!(f.active_gpu_count(), 4 * 16 * 8);
        // 8 rails × 2 planes × 4 segments.
        assert_eq!(f.tors.len(), 64);
        // Each ToR has aggs_per_plane uplinks.
        assert_eq!(f.tor_uplinks(f.tors[0]).len(), 8);
        f.net.validate();
    }

    #[test]
    fn tor_downstream_port_counts_match_hosts() {
        let f = HpnConfig::tiny().build();
        // Each ToR serves (hosts_per_segment + backup) NIC ports.
        for &t in &f.tors {
            let down = f
                .net
                .out_links_to(t, |k| matches!(k, NodeKind::Nic { .. }))
                .len();
            assert_eq!(down, 5, "128+8 pattern scaled down to 4+1");
        }
    }

    #[test]
    fn multi_pod_build_has_core_interconnect() {
        let mut cfg = HpnConfig::tiny();
        cfg.pods = 2;
        let f = cfg.build();
        assert_eq!(f.pods, 2);
        assert_eq!(f.segments, 4);
        // Aggs double; cores shared.
        assert_eq!(f.aggs.len(), 16);
        assert_eq!(f.cores.len(), 8);
        // Some agg in pod 0 and some agg in pod 1 share a core.
        let a0 = f.plane_aggs(0, 0)[0];
        let up0: Vec<_> = f
            .net
            .out_links_to(a0, |k| matches!(k, NodeKind::Core { .. }))
            .iter()
            .map(|&l| f.net.link(l).dst)
            .collect();
        let a1 = f.plane_aggs(1, 0)[0];
        let up1: Vec<_> = f
            .net
            .out_links_to(a1, |k| matches!(k, NodeKind::Core { .. }))
            .iter()
            .map(|&l| f.net.link(l).dst)
            .collect();
        assert!(up0.iter().any(|c| up1.contains(c)), "pods share cores");
    }
}
