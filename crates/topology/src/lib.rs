//! # hpn-topology — network graphs and fabric builders
//!
//! This crate models the physical wiring of the datacenter fabrics the paper
//! discusses, as typed directed graphs ([`Network`]) ready to be loaded into
//! the fluid simulator ([`hpn_sim::FlowNet`]).
//!
//! Builders provided:
//!
//! * [`hpn::HpnConfig`] — the paper's contribution (§3–§6): rail-optimized
//!   dual-ToR segments of 1K GPUs on 51.2Tbps single-chip ToRs, a dual-plane
//!   tier-2 interconnecting 15 segments (15K GPUs per pod), and a 15:1
//!   oversubscribed Aggregation–Core tier-3.
//! * [`dcnplus::DcnPlusConfig`] — the previous-generation baseline (Appendix
//!   C): 3-tier Clos, dual-ToR, 128-GPU segments, 4 segments per pod.
//! * [`fattree::fat_tree`] — classic fat-tree(k) (Table 1 comparison).
//! * [`superpod::SuperPodConfig`] — a DGX-SuperPod-like 3-tier rail topology
//!   (Table 1 comparison).
//! * [`railonly`] — tier-2 rail-only accounting (Table 4 / §10 discussion).
//! * [`frontend`] — the independent frontend network with the storage
//!   cluster (§8).
//!
//! Every fabric is scale-parameterised: unit tests use miniature instances
//! (e.g. 4 hosts per segment) whose structure is identical to the paper-
//! scale ones, which the experiment harness builds in full.

#![warn(missing_docs)]

pub mod dcnplus;
pub mod error;
pub mod fabric;
pub mod fattree;
pub mod frontend;
pub mod graph;
pub mod hpn;
pub mod railonly;
pub mod superpod;
pub mod wiring;

pub use dcnplus::DcnPlusConfig;
pub use error::BuildError;
pub use fabric::{Fabric, FabricKind, Host};
pub use fattree::try_fat_tree;
pub use graph::{LinkIdx, Network, NodeId, NodeKind};
pub use hpn::HpnConfig;
pub use railonly::try_build_rail_only;
