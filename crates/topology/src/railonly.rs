//! Rail-only tier-2 — the §10 / Table 4 design-space discussion.
//!
//! If tier-2 is wired *per rail* (plane p of rail r only interconnects the
//! rail-r ToRs), each Aggregation plane serves an eighth of the ToRs, so a
//! pod can host 8× the GPUs — 122,880 at paper scale — at the cost of
//! forbidding cross-rail network traffic (MoE all-to-all, multi-tenant
//! serverless). HPN rejects this trade; we implement it to reproduce
//! Table 4 and to let the benches quantify what breaks.

// Index loops mirror the paper's (host, rail, plane) notation; iterator
// adaptors would obscure the wiring math.
#![allow(clippy::needless_range_loop)]

use crate::error::BuildError;
use crate::fabric::{attach_nic_port, build_host, Fabric, FabricKind, Host};
use crate::graph::{Network, NodeId, NodeKind};
use crate::hpn::HpnConfig;

/// Build a rail-only fabric, or explain why the config cannot support one.
pub fn try_build_rail_only(cfg: &HpnConfig) -> Result<Fabric, BuildError> {
    cfg.validate()?;
    if !(cfg.dual_tor && cfg.rail_optimized) {
        return Err(BuildError {
            field: "dual_tor/rail_optimized",
            reason: "rail-only tier-2 presumes the rail-optimized dual-ToR tier-1".into(),
        });
    }
    Ok(build_rail_only(cfg))
}

/// Table 4 accounting derived from an HPN configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RailOnlyAccounting {
    /// Tier-2 planes in the any-to-any design (2).
    pub any_to_any_planes: u32,
    /// Tier-2 planes in the rail-only design (2 × rails = 16).
    pub rail_only_planes: u32,
    /// GPUs per pod, any-to-any (15,360).
    pub any_to_any_gpus: u32,
    /// GPUs per pod, rail-only (122,880).
    pub rail_only_gpus: u32,
}

/// Compute Table 4 from an HPN configuration.
pub fn rail_only_accounting(cfg: &HpnConfig) -> RailOnlyAccounting {
    let rails = cfg.host.rails as u32;
    RailOnlyAccounting {
        any_to_any_planes: 2,
        rail_only_planes: 2 * rails,
        any_to_any_gpus: cfg.gpus_per_pod(),
        // Each Aggregation plane now serves only the ToRs of one rail, so a
        // pod absorbs `rails`× more segments.
        rail_only_gpus: cfg.gpus_per_pod() * rails,
    }
}

/// Build a rail-only variant of the HPN fabric: same tier-1, but the
/// Aggregation layer is partitioned per (plane, rail) and a ToR connects
/// only to the Agg group of its own rail. Cross-rail traffic *must* relay
/// over NVLink (routing will fail if asked for a cross-rail network path
/// without an intra-host hop).
pub fn build_rail_only(cfg: &HpnConfig) -> Fabric {
    assert!(
        cfg.dual_tor && cfg.rail_optimized,
        "rail-only tier-2 presumes the rail-optimized dual-ToR tier-1"
    );
    let mut net = Network::new();
    let mut hosts: Vec<Host> = Vec::new();
    let mut tors: Vec<NodeId> = Vec::new();
    let mut aggs: Vec<NodeId> = Vec::new();
    let cores: Vec<NodeId> = Vec::new(); // rail-only is studied as a single pod

    let rails = cfg.host.rails;
    // Agg groups indexed by (plane, rail); sized down so the total Agg port
    // budget matches the any-to-any design: each group needs only
    // tor-uplinks ports per segment.
    let mut agg_groups: Vec<Vec<NodeId>> = Vec::new();
    for plane in 0..2u8 {
        for rail in 0..rails {
            let mut group = Vec::new();
            for index in 0..cfg.aggs_per_plane {
                // Encode the rail in the index space to keep NodeKind simple.
                let a = net.add_node(NodeKind::Agg {
                    pod: 0,
                    plane,
                    index: rail as u16 * cfg.aggs_per_plane + index,
                });
                group.push(a);
                aggs.push(a);
            }
            agg_groups.push(group);
        }
    }
    let group_of = |plane: u8, rail: usize| &agg_groups[plane as usize * rails + rail];

    let mut host_id = 0u32;
    for segment in 0..cfg.segments_per_pod {
        let mut seg_tors: Vec<Vec<NodeId>> = Vec::with_capacity(rails);
        for rail in 0..rails {
            let mut per_plane = Vec::with_capacity(2);
            for plane in 0..2u8 {
                let t = net.add_node(NodeKind::Tor {
                    segment,
                    pair: rail as u8,
                    plane,
                });
                tors.push(t);
                per_plane.push(t);
                for &a in group_of(plane, rail) {
                    net.add_duplex(t, a, cfg.trunk_bps, cfg.switch_buffer_bits);
                }
            }
            seg_tors.push(per_plane);
        }
        let total_hosts = cfg.hosts_per_segment + cfg.backup_hosts_per_segment;
        for h in 0..total_hosts {
            let backup = h >= cfg.hosts_per_segment;
            let mut host = build_host(&mut net, &cfg.host, host_id, segment, 0, backup);
            for rail in 0..rails {
                for (port, &tor) in seg_tors[rail].iter().enumerate() {
                    attach_nic_port(
                        &mut net,
                        &mut host,
                        rail,
                        port,
                        tor,
                        cfg.host.nic_port_bps,
                        cfg.switch_buffer_bits,
                    );
                }
            }
            hosts.push(host);
            host_id += 1;
        }
    }

    let fabric = Fabric {
        net,
        hosts,
        tors,
        aggs,
        cores,
        kind: FabricKind::Hpn,
        dual_tor: true,
        dual_plane: true,
        rail_optimized: true,
        segments: cfg.segments_per_pod,
        pods: 1,
        host_params: cfg.host,
    };
    fabric.net.validate();
    fabric
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_accounting() {
        let acc = rail_only_accounting(&HpnConfig::paper());
        assert_eq!(acc.any_to_any_planes, 2);
        assert_eq!(acc.rail_only_planes, 16);
        assert_eq!(acc.any_to_any_gpus, 15360);
        assert_eq!(acc.rail_only_gpus, 122880);
    }

    #[test]
    fn rail_isolation_in_tier2() {
        let f = build_rail_only(&HpnConfig::tiny());
        // A rail-0 ToR and a rail-1 ToR of the same plane share no Agg.
        let tor_r0 = f
            .tors
            .iter()
            .copied()
            .find(|&t| {
                matches!(
                    f.net.kind(t),
                    NodeKind::Tor {
                        pair: 0,
                        plane: 0,
                        ..
                    }
                )
            })
            .unwrap();
        let tor_r1 = f
            .tors
            .iter()
            .copied()
            .find(|&t| {
                matches!(
                    f.net.kind(t),
                    NodeKind::Tor {
                        pair: 1,
                        plane: 0,
                        ..
                    }
                )
            })
            .unwrap();
        let aggs_of = |t| {
            let mut v: Vec<NodeId> = f
                .tor_uplinks(t)
                .iter()
                .map(|&l| f.net.link(l).dst)
                .collect();
            v.sort();
            v
        };
        let a0 = aggs_of(tor_r0);
        let a1 = aggs_of(tor_r1);
        assert!(!a0.is_empty() && !a1.is_empty());
        assert!(a0.iter().all(|a| !a1.contains(a)), "rails share an Agg");
    }

    #[test]
    fn same_rail_cross_segment_connectivity_exists() {
        let f = build_rail_only(&HpnConfig::tiny());
        // Rail-0 ToRs of segment 0 and 1 share their Agg group.
        let find = |seg, plane| {
            f.tors
                .iter()
                .copied()
                .find(|&t| {
                    matches!(f.net.kind(t),
                        NodeKind::Tor { segment, pair: 0, plane: p } if segment == seg && p == plane)
                })
                .unwrap()
        };
        let t0 = find(0, 0);
        let t1 = find(1, 0);
        let a0: Vec<NodeId> = f
            .tor_uplinks(t0)
            .iter()
            .map(|&l| f.net.link(l).dst)
            .collect();
        let a1: Vec<NodeId> = f
            .tor_uplinks(t1)
            .iter()
            .map(|&l| f.net.link(l).dst)
            .collect();
        assert!(a0.iter().any(|a| a1.contains(a)));
    }
}
