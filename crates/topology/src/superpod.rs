//! DGX-SuperPod-like 3-tier rail topology — the second comparison row of
//! Table 1 (also representative of NVIDIA DGX Cloud, Meta's AI
//! supercomputer and CoreWeave, per the paper's footnote).
//!
//! Structure: hosts are grouped into *scalable units* (SUs). Tier 1 is
//! rail-optimized and single-ToR: leaf switch `r` of an SU serves rail `r`
//! of all hosts in that SU. Tier 2 (spine) and tier 3 (core) are plain Clos
//! layers where every leaf reaches every spine and every spine reaches a
//! group of cores. Path selection must therefore hash at three layers —
//! O(32×32×4) = O(4096) per Table 1 — and traffic crossing SUs passes three
//! hashing stages, the polarization-prone pattern of §2.2.

// Index loops mirror the paper's (host, rail, plane) notation; iterator
// adaptors would obscure the wiring math.
#![allow(clippy::needless_range_loop)]

use crate::fabric::{attach_nic_port, build_host, Fabric, FabricKind, Host, HostParams};
use crate::graph::{Network, NodeId, NodeKind};

/// Parameters of a SuperPod-like build.
#[derive(Clone, Copy, Debug)]
pub struct SuperPodConfig {
    /// Number of scalable units.
    pub sus: u32,
    /// Hosts per SU (NVIDIA reference: 32 hosts = 256 GPUs per SU).
    pub hosts_per_su: u32,
    /// Spine switches per rail group (Table 1 counts 32 uplink choices).
    pub spines: u16,
    /// Core switches (Table 1 counts 4 choices at the top).
    pub cores: u16,
    /// Leaf→Spine and Spine→Core port speed, bits/s.
    pub trunk_bps: f64,
    /// Switch port buffer, bits.
    pub switch_buffer_bits: f64,
    /// Host hardware parameters.
    pub host: HostParams,
}

impl SuperPodConfig {
    /// Reference-architecture scale: 64 SUs × 32 hosts × 8 GPUs = 16,384
    /// GPUs (Table 1's SuperPod row).
    pub fn paper() -> Self {
        SuperPodConfig {
            sus: 64,
            hosts_per_su: 32,
            spines: 32,
            cores: 4,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            host: HostParams::paper(),
        }
    }

    /// Miniature configuration for unit tests.
    pub fn tiny() -> Self {
        SuperPodConfig {
            sus: 2,
            hosts_per_su: 2,
            spines: 2,
            cores: 2,
            trunk_bps: 400e9,
            switch_buffer_bits: 400e3 * 8.0,
            host: HostParams::tiny(),
        }
    }

    /// Total GPUs.
    pub fn gpu_count(&self) -> u32 {
        self.sus * self.hosts_per_su * self.host.rails as u32
    }

    /// Build the fabric.
    pub fn build(&self) -> Fabric {
        let mut net = Network::new();
        let mut hosts: Vec<Host> = Vec::new();
        let mut tors: Vec<NodeId> = Vec::new();
        let mut aggs: Vec<NodeId> = Vec::new();
        let mut cores: Vec<NodeId> = Vec::new();

        for index in 0..self.cores {
            cores.push(net.add_node(NodeKind::Core { plane: 0, index }));
        }
        // Spine layer (mapped onto Agg nodes; pod 0 = the whole SuperPod).
        for index in 0..self.spines {
            let s = net.add_node(NodeKind::Agg {
                pod: 0,
                plane: 0,
                index,
            });
            aggs.push(s);
            for &c in &cores {
                net.add_duplex(s, c, self.trunk_bps, self.switch_buffer_bits);
            }
        }

        let mut host_id = 0u32;
        for su in 0..self.sus {
            // One leaf per rail, single-ToR.
            let mut leaves = Vec::with_capacity(self.host.rails);
            for rail in 0..self.host.rails {
                let leaf = net.add_node(NodeKind::Tor {
                    segment: su,
                    pair: rail as u8,
                    plane: 0,
                });
                tors.push(leaf);
                leaves.push(leaf);
                for &s in &aggs {
                    net.add_duplex(leaf, s, self.trunk_bps, self.switch_buffer_bits);
                }
            }
            for _ in 0..self.hosts_per_su {
                let mut host = build_host(&mut net, &self.host, host_id, su, 0, false);
                for rail in 0..self.host.rails {
                    // Single-ToR: both NIC ports bond into one cable.
                    attach_nic_port(
                        &mut net,
                        &mut host,
                        rail,
                        0,
                        leaves[rail],
                        self.host.nic_bps(),
                        self.switch_buffer_bits,
                    );
                }
                hosts.push(host);
                host_id += 1;
            }
        }

        let fabric = Fabric {
            net,
            hosts,
            tors,
            aggs,
            cores,
            kind: FabricKind::SuperPod,
            dual_tor: false,
            dual_plane: false,
            rail_optimized: true,
            segments: self.sus,
            pods: 1,
            host_params: self.host,
        };
        fabric.net.validate();
        fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        assert_eq!(SuperPodConfig::paper().gpu_count(), 16384);
    }

    #[test]
    fn tiny_structure() {
        let cfg = SuperPodConfig::tiny();
        let f = cfg.build();
        assert_eq!(f.hosts.len(), 4);
        // 2 SUs × 2 rails of leaves.
        assert_eq!(f.tors.len(), 4);
        assert_eq!(f.aggs.len(), 2);
        assert_eq!(f.cores.len(), 2);
        // Single-ToR: only port 0 wired, at bonded speed.
        let h = &f.hosts[0];
        assert!(h.nic_up[0][0].is_some());
        assert!(h.nic_up[0][1].is_none());
        assert_eq!(f.net.link(h.nic_up[0][0].unwrap()).cap_bps, 400e9);
    }

    #[test]
    fn rail_optimized_leaves() {
        let f = SuperPodConfig::tiny().build();
        let h0 = &f.hosts[0];
        let h1 = &f.hosts[1];
        // Same SU, same rail → same leaf; different rails → different leaves.
        assert_eq!(h0.nic_tor[0][0], h1.nic_tor[0][0]);
        assert_ne!(h0.nic_tor[0][0], h0.nic_tor[1][0]);
    }

    #[test]
    fn three_tiers_present() {
        // Cross-SU, any leaf can reach any other via spine (tier2), and
        // spines reach cores (tier3).
        let f = SuperPodConfig::tiny().build();
        let leaf = f.tors[0];
        assert_eq!(f.tor_uplinks(leaf).len(), 2);
        let spine = f.aggs[0];
        let ups = f
            .net
            .out_links_to(spine, |k| matches!(k, NodeKind::Core { .. }));
        assert_eq!(ups.len(), 2);
    }
}
