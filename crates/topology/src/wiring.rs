//! Wiring validation — the §10 lesson "HPN complicates wiring".
//!
//! The rail-optimized + dual-plane design multiplies cabling rules, and
//! the paper reports on-site staff miswiring fabrics during the nascent
//! build-out; production eradicates these with INT-based probes that check
//! every hop against the blueprint. This module is that checker: given a
//! built [`Fabric`], [`validate_blueprint`] verifies every rule the HPN
//! blueprint implies and reports each violation with the offending nodes —
//! the same information an INT probe's (switchID, portID) trace yields.

use crate::fabric::Fabric;
use crate::graph::NodeKind;

/// One detected wiring violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WiringViolation {
    /// A NIC port is attached to a ToR of the wrong plane (port p must go
    /// to plane p).
    PortPlaneMismatch {
        /// Host with the miswired NIC.
        host: u32,
        /// Rail of the NIC.
        rail: u8,
        /// NIC port index.
        port: u8,
        /// Plane of the ToR it actually reaches.
        actual_plane: u8,
    },
    /// A NIC is attached to a ToR pair of the wrong rail (rail-optimized
    /// fabrics bind rail r to pair r).
    RailPairMismatch {
        /// Host with the miswired NIC.
        host: u32,
        /// Rail of the NIC.
        rail: u8,
        /// Pair id of the ToR it actually reaches.
        actual_pair: u8,
    },
    /// A NIC reaches a ToR outside its own segment.
    SegmentMismatch {
        /// Host with the miswired NIC.
        host: u32,
        /// Rail of the NIC.
        rail: u8,
        /// Segment of the ToR it actually reaches.
        actual_segment: u32,
    },
    /// The two ports of one NIC land on the same ToR (no dual-ToR
    /// redundancy left).
    BothPortsOneTor {
        /// Host with the miswired NIC.
        host: u32,
        /// Rail of the NIC.
        rail: u8,
    },
    /// A dual-plane ToR has an uplink into the wrong plane's Aggregation
    /// switch.
    TorPlaneLeak {
        /// Segment of the ToR.
        segment: u32,
        /// Plane the ToR belongs to.
        tor_plane: u8,
        /// Plane of the Agg it is cabled into.
        agg_plane: u8,
    },
}

/// Check a fabric against the HPN blueprint. An unmodified builder output
/// returns an empty list; a hand-patched (miswired) fabric returns one
/// violation per bad cable, in deterministic order.
pub fn validate_blueprint(fabric: &Fabric) -> Vec<WiringViolation> {
    let mut out = Vec::new();
    for host in &fabric.hosts {
        for rail in 0..host.nics.len() {
            let mut tors_seen = Vec::new();
            for port in 0..2 {
                let Some(tor) = host.nic_tor[rail][port] else {
                    continue;
                };
                tors_seen.push(tor);
                let NodeKind::Tor {
                    segment,
                    pair,
                    plane,
                } = fabric.net.kind(tor)
                else {
                    continue;
                };
                if segment != host.segment {
                    out.push(WiringViolation::SegmentMismatch {
                        host: host.id,
                        rail: rail as u8,
                        actual_segment: segment,
                    });
                }
                if fabric.dual_tor && plane as usize != port {
                    out.push(WiringViolation::PortPlaneMismatch {
                        host: host.id,
                        rail: rail as u8,
                        port: port as u8,
                        actual_plane: plane,
                    });
                }
                if fabric.rail_optimized && pair as usize != rail {
                    out.push(WiringViolation::RailPairMismatch {
                        host: host.id,
                        rail: rail as u8,
                        actual_pair: pair,
                    });
                }
            }
            if tors_seen.len() == 2 && tors_seen[0] == tors_seen[1] {
                out.push(WiringViolation::BothPortsOneTor {
                    host: host.id,
                    rail: rail as u8,
                });
            }
        }
    }
    if fabric.dual_plane {
        for &t in &fabric.tors {
            let NodeKind::Tor { segment, plane, .. } = fabric.net.kind(t) else {
                continue;
            };
            for l in fabric.tor_uplinks(t) {
                let agg = fabric.net.link(l).dst;
                if let NodeKind::Agg { plane: ap, .. } = fabric.net.kind(agg) {
                    if ap != plane {
                        out.push(WiringViolation::TorPlaneLeak {
                            segment,
                            tor_plane: plane,
                            agg_plane: ap,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::attach_nic_port;
    use crate::hpn::HpnConfig;

    #[test]
    fn builder_output_is_blueprint_clean() {
        for cfg in [HpnConfig::tiny(), HpnConfig::medium()] {
            let f = cfg.build();
            assert!(validate_blueprint(&f).is_empty(), "clean build flagged");
        }
        // The ablations are blueprint-clean against their own flags too.
        let mut c = HpnConfig::tiny();
        c.dual_plane = false;
        assert!(validate_blueprint(&c.build()).is_empty());
        let mut c = HpnConfig::tiny();
        c.rail_optimized = false;
        assert!(validate_blueprint(&c.build()).is_empty());
    }

    #[test]
    fn swapped_ports_are_detected() {
        // Simulate the on-site mistake: plugging a NIC's two cables into
        // each other's ToRs.
        let mut f = HpnConfig::tiny().build();
        let h = 0usize;
        f.hosts[h].nic_tor[0].swap(0, 1);
        let v = validate_blueprint(&f);
        let planes: Vec<_> = v
            .iter()
            .filter(|v| matches!(v, WiringViolation::PortPlaneMismatch { .. }))
            .collect();
        assert_eq!(planes.len(), 2, "both ports flagged: {v:?}");
    }

    #[test]
    fn wrong_rail_cable_is_detected() {
        // Plug host 0's rail-0 spare port into the rail-1 ToR.
        let mut f = HpnConfig::tiny().build();
        let wrong_tor = f.hosts[0].nic_tor[1][0].unwrap(); // rail 1, plane 0
        let mut host = f.hosts[0].clone();
        host.nic_up[0][0] = None;
        host.nic_down[0][0] = None;
        host.nic_tor[0][0] = None;
        attach_nic_port(&mut f.net, &mut host, 0, 0, wrong_tor, 200e9, 1e6);
        f.hosts[0] = host;
        let v = validate_blueprint(&f);
        assert!(
            v.iter().any(|v| matches!(
                v,
                WiringViolation::RailPairMismatch {
                    host: 0,
                    rail: 0,
                    ..
                }
            )),
            "rail mismatch missed: {v:?}"
        );
    }

    #[test]
    fn both_ports_on_one_tor_is_detected() {
        let mut f = HpnConfig::tiny().build();
        let tor0 = f.hosts[0].nic_tor[0][0];
        f.hosts[0].nic_tor[0][1] = tor0;
        let v = validate_blueprint(&f);
        assert!(v
            .iter()
            .any(|v| matches!(v, WiringViolation::BothPortsOneTor { host: 0, rail: 0 })));
    }
}
