//! The cluster simulation runtime.
//!
//! [`ClusterSim`] owns the physical fluid network, the router and the
//! converged routing view, and exposes a message API to applications
//! (collectives, workloads, fault injectors). The control flow is
//! inversion-of-control: the application implements [`ClusterApp`] and the
//! runtime calls back on message completions and timers. Events are popped
//! before callbacks run, so callbacks receive `&mut ClusterSim` and can
//! freely send more messages — the same pattern the engine crate uses.
//!
//! ## Failure semantics (§4.2 + §9.3)
//!
//! `fail_link` flips the physical link immediately: flows crossing it stall
//! (rate 0) because the fluid model assigns them no bandwidth. The *routing
//! view* ([`hpn_routing::LinkHealth`]) follows after the BGP convergence
//! delay, at which point every in-flight message whose path crosses the
//! link is transparently re-issued over a surviving path (dual-ToR) or
//! left stalled (single-ToR, nothing to fail over to). Repair is the
//! mirror image. This reproduces Fig 18's contrast: a dual-ToR job loses
//! one port's bandwidth; a single-ToR job halts.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use hpn_routing::bgp::DEFAULT_CONVERGENCE;
use hpn_routing::repac;
use hpn_routing::router::{RouteRequest, Router};
use hpn_routing::{HashMode, LinkHealth};
use hpn_sim::{FlowNet, FlowSpec, SimDuration, SimTime};
use hpn_telemetry::{Event, SharedRecorder, SimCtx};
use hpn_topology::{Fabric, LinkIdx};

use crate::conn::{ConnGroup, Connection, ConnectionId, GroupId, PathPolicy};

/// Completion notice delivered to the application.
#[derive(Clone, Copy, Debug)]
pub struct MessageDone {
    /// The runtime's message id.
    pub msg_id: u64,
    /// Connection the message used (`None` for same-GPU copies).
    pub conn: Option<ConnectionId>,
    /// The opaque value passed to `send*`.
    pub user: u64,
    /// Message size in bits.
    pub size_bits: f64,
}

/// Application hooks.
pub trait ClusterApp {
    /// A message finished delivering.
    fn on_message_complete(&mut self, cs: &mut ClusterSim, done: MessageDone);
    /// An application timer set via [`ClusterSim::set_timer`] fired.
    fn on_timer(&mut self, _cs: &mut ClusterSim, _tag: u64) {}
}

#[derive(Clone, Copy, Debug)]
enum Timer {
    App(u64),
    Converge { link: LinkIdx, up: bool },
    CableEvent { link: LinkIdx, up: bool },
    LocalCopyDone(u64),
}

#[derive(Clone, Debug)]
struct Msg {
    conn: Option<ConnectionId>,
    user: u64,
    flow: Option<hpn_sim::FlowHandle>,
    size_bits: f64,
    /// Fixed latency charged after the last bit leaves the wire.
    latency: SimDuration,
    /// Bits not yet delivered; kept current whenever the flow is torn down
    /// so progress survives stall/reroute cycles.
    remaining_bits: f64,
    /// True when no healthy route exists; retried on repair convergence.
    stalled: bool,
}

/// Fixed delays that rate-based fluid flows cannot express: per-hop
/// propagation/forwarding latency and per-message software overhead (QP
/// doorbell, NCCL proxy, completion handling). These floor small-message
/// collective time, giving busbw-vs-size curves their characteristic rise
/// (Fig 17/19) — without them a fluid model finishes a 1MB AllReduce
/// implausibly instantly.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Propagation + switching delay per path hop.
    pub per_hop: SimDuration,
    /// Software/NIC overhead per message.
    pub per_message: SimDuration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            per_hop: SimDuration::from_micros(1),
            per_message: SimDuration::from_micros(20),
        }
    }
}

/// Counters the experiments report.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransportStats {
    /// Messages transparently re-issued after failover.
    pub reroutes: u64,
    /// Messages that found no healthy path and had to wait for repair.
    pub stalls: u64,
    /// Messages completed.
    pub completed: u64,
}

/// The cluster runtime. Public fields invite read-only inspection by
/// experiments (link rates, queue lengths); mutation goes through methods.
///
/// The fabric and router are `Arc`-shared: both are immutable after
/// construction (the router's policy knobs use copy-on-write via
/// [`ClusterSim::router_mut`]), so a cross-request artifact cache can hand
/// one built fabric/router to many concurrent sessions. Field reads
/// (`cs.fabric.hosts`, `cs.router.route(...)`) deref-coerce unchanged.
pub struct ClusterSim {
    /// The fabric wiring (shared, immutable after build).
    pub fabric: Arc<Fabric>,
    /// The router (pure; copy-on-write for policy knobs).
    pub router: Arc<Router>,
    /// Converged routing view.
    pub health: LinkHealth,
    /// The physical fluid network.
    pub net: FlowNet,
    /// BGP convergence delay applied between physical and routed state.
    pub convergence: SimDuration,
    /// Fixed per-message/per-hop delays.
    pub latency: LatencyModel,
    now: SimTime,
    conns: Vec<Connection>,
    groups: Vec<ConnGroup>,
    msgs: BTreeMap<u64, Msg>,
    next_msg: u64,
    timers: BinaryHeap<Reverse<(SimTime, u64, u8)>>,
    timer_payload: BTreeMap<u64, Timer>,
    timer_seq: u64,
    stats: TransportStats,
    telemetry: SharedRecorder,
}

impl ClusterSim {
    /// Build a runtime over a fabric with the inert default context: no
    /// telemetry, allocator from `HPN_ALLOCATOR`. Shorthand for
    /// [`ClusterSim::with_ctx`] with `&SimCtx::default()` — sessions that
    /// record telemetry or pin an allocator build one explicitly.
    pub fn new(fabric: Fabric, mode: HashMode) -> Self {
        Self::with_ctx(fabric, mode, &SimCtx::default())
    }

    /// Build a runtime over a fabric from an explicit session context.
    ///
    /// The context picks the fluid net's rate allocator and supplies the
    /// telemetry recorder: when it is enabled, a [`Event::SimStart`]
    /// segment marker is emitted and the fluid net gets a probe so
    /// flow/rate/link events land in the same sink. With a disabled
    /// recorder nothing is attached and the runtime pays no observation
    /// cost. The runtime holds only `Send` parts, so a session built here
    /// can migrate to a worker thread.
    pub fn with_ctx(fabric: Fabric, mode: HashMode, ctx: &SimCtx) -> Self {
        let router = Router::new(&fabric, mode);
        Self::from_parts(Arc::new(fabric), Arc::new(router), ctx)
    }

    /// Build a runtime from pre-built, `Arc`-shared parts — the cache-warm
    /// path. `router` must have been built over `fabric` (the batch path,
    /// [`ClusterSim::with_ctx`], guarantees this by construction; an
    /// artifact cache guarantees it by keying the router on the topology
    /// section). Behaves byte-identically to `with_ctx`: the same
    /// `SimStart` marker is emitted and the same probe attached, so warm
    /// and cold construction are indistinguishable in telemetry.
    pub fn from_parts(fabric: Arc<Fabric>, router: Arc<Router>, ctx: &SimCtx) -> Self {
        let health = LinkHealth::new(fabric.net.link_count());
        let mut net = fabric.to_flownet_with(ctx.allocator());
        net.set_surrogate_validate_every(ctx.validate_every());
        let telemetry = ctx.recorder().clone();
        if telemetry.enabled() {
            telemetry.record(&Event::SimStart {
                label: format!(
                    "cluster kind={:?} hosts={} links={}",
                    fabric.kind,
                    fabric.hosts.len(),
                    fabric.net.link_count()
                ),
            });
            net.set_probe(Some(telemetry.net_probe()));
        }
        ClusterSim {
            fabric,
            router,
            health,
            net,
            convergence: DEFAULT_CONVERGENCE,
            latency: LatencyModel::default(),
            now: SimTime::ZERO,
            conns: Vec::new(),
            groups: Vec::new(),
            msgs: BTreeMap::new(),
            next_msg: 0,
            timers: BinaryHeap::new(),
            timer_payload: BTreeMap::new(),
            timer_seq: 0,
            stats: TransportStats::default(),
            telemetry,
        }
    }

    /// The telemetry recorder this runtime records into (the context's
    /// recorder captured at construction). Applications layered on the
    /// runtime (collectives, fault injectors) emit through this handle so
    /// the whole run lands in one ordered stream.
    pub fn telemetry(&self) -> &SharedRecorder {
        &self.telemetry
    }

    /// Mutable access to the router's policy knobs (e.g.
    /// [`Router::relay_cross_rail`]). Copy-on-write: when the router is
    /// shared with an artifact cache or another session, the first
    /// mutation clones the tables so the shared copy stays pristine.
    pub fn router_mut(&mut self) -> &mut Router {
        Arc::make_mut(&mut self.router)
    }

    /// Emit a [`Event::LinkSample`] for a fluid-net link (utilization and
    /// queue occupancy at the current instant). No-op when telemetry is
    /// disabled; experiment samplers call this on their watched links.
    pub fn sample_link_telemetry(&mut self, link: hpn_sim::LinkId) {
        if self.telemetry.enabled() {
            self.net.recompute_if_dirty();
            let l = self.net.link(link);
            let ev = Event::LinkSample {
                t_ns: self.now.as_nanos(),
                link: link.0,
                utilization: l.utilization(),
                queue_bits: l.queue_bits,
                capacity_bps: l.capacity_bps(),
            };
            self.telemetry.record(&ev);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Rate-allocator recompute-scope counters of the underlying fluid net
    /// (see [`hpn_sim::RecomputeScope`]): experiments snapshot and diff
    /// these to report how local rate recomputes stayed under churn.
    pub fn alloc_scope(&self) -> hpn_sim::RecomputeScope {
        self.net.alloc_scope()
    }

    /// Messages currently in flight (including stalled ones).
    pub fn inflight(&self) -> usize {
        self.msgs.len()
    }

    /// Read a connection.
    pub fn conn(&self, id: ConnectionId) -> &Connection {
        &self.conns[id.0 as usize]
    }

    /// Read a group.
    pub fn group(&self, id: GroupId) -> &ConnGroup {
        &self.groups[id.0 as usize]
    }

    // ------------------------------------------------------------------
    // Connection establishment
    // ------------------------------------------------------------------

    /// `EstablishConns` (Appendix B Algorithm 1): create up to `n`
    /// connections over pairwise-disjoint paths between two GPUs and bundle
    /// them into a group with the given policy. `sport_base` seeds the
    /// RePaC source-port scan; vary it per group so concurrent groups don't
    /// all pick identical tuples.
    pub fn establish_group(
        &mut self,
        src: (u32, usize),
        dst: (u32, usize),
        n: usize,
        policy: PathPolicy,
        sport_base: u16,
    ) -> GroupId {
        assert!(src != dst, "group to self");
        let found = repac::find_paths(
            &self.router,
            &self.fabric,
            &self.health,
            src.0,
            src.1,
            dst.0,
            dst.1,
            n,
            sport_base,
        );
        found.record(self.now, &self.telemetry);
        assert!(
            !found.paths.is_empty(),
            "no path between {src:?} and {dst:?}"
        );
        let mut conns = Vec::with_capacity(found.paths.len());
        for p in found.paths {
            let id = ConnectionId(self.conns.len() as u32);
            let (path, path_demand_bps) = self.intern_route(&p.route);
            self.conns.push(Connection {
                id,
                src,
                dst,
                sport: p.sport,
                route: p.route,
                path,
                path_demand_bps,
                wqe_bytes: 0.0,
                inflight: 0,
            });
            conns.push(id);
        }
        let gid = GroupId(self.groups.len() as u32);
        self.groups.push(ConnGroup {
            id: gid,
            conns,
            policy,
            rr_next: 0,
        });
        gid
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    /// Send over a group; the group's policy picks the connection.
    pub fn send_group(&mut self, group: GroupId, size_bits: f64, user: u64) -> u64 {
        let conns_snapshot: Vec<(ConnectionId, f64)> = self.groups[group.0 as usize]
            .conns
            .iter()
            .map(|&c| (c, self.conns[c.0 as usize].wqe_bytes))
            .collect();
        let pick = self.groups[group.0 as usize].pick(|c| {
            conns_snapshot
                .iter()
                .find(|&&(id, _)| id == c)
                .map(|&(_, w)| w)
                .expect("member of own group")
        });
        self.send_on(pick, size_bits, user)
    }

    /// Send over a specific connection.
    pub fn send_on(&mut self, conn_id: ConnectionId, size_bits: f64, user: u64) -> u64 {
        assert!(size_bits > 0.0, "empty message");
        let msg_id = self.next_msg;
        self.next_msg += 1;
        self.conns[conn_id.0 as usize].wqe_bytes += size_bits / 8.0;
        self.conns[conn_id.0 as usize].inflight += 1;

        // Revalidate the route lazily: health may have changed since the
        // connection was last used.
        if self.conns[conn_id.0 as usize]
            .route
            .links
            .iter()
            .any(|&l| !self.health.is_up(l))
        {
            self.refresh_conn_route(conn_id);
        }

        let hops = self.conns[conn_id.0 as usize].route.links.len() as u64;
        let mut msg = Msg {
            conn: Some(conn_id),
            user,
            flow: None,
            size_bits,
            remaining_bits: size_bits,
            latency: self.latency.per_message + self.latency.per_hop.saturating_mul(hops),
            stalled: false,
        };
        if self.conns[conn_id.0 as usize]
            .route
            .links
            .iter()
            .all(|&l| self.health.is_up(l))
        {
            msg.flow = Some(self.start_flow(conn_id, size_bits, msg_id));
        } else {
            msg.stalled = true;
            self.stats.stalls += 1;
        }
        self.msgs.insert(msg_id, msg);
        msg_id
    }

    /// A same-GPU "send" (memory copy at NVLink speed) — collectives use
    /// this for rank-local reductions so their code stays uniform.
    pub fn send_local(&mut self, size_bits: f64, user: u64) -> u64 {
        assert!(size_bits > 0.0, "empty message");
        let msg_id = self.next_msg;
        self.next_msg += 1;
        self.msgs.insert(
            msg_id,
            Msg {
                conn: None,
                user,
                flow: None,
                size_bits,
                remaining_bits: size_bits,
                latency: SimDuration::ZERO,
                stalled: false,
            },
        );
        let dur = SimDuration::from_secs_f64(size_bits / self.fabric.host_params.nvlink_bps)
            + self.latency.per_message;
        self.push_timer(self.now + dur, Timer::LocalCopyDone(msg_id));
        msg_id
    }

    /// Intern a route's flow path and compute its demand cap (the min
    /// nominal capacity along the route — static fabric data, so caching it
    /// per connection is exact). Called on establish and route refresh, not
    /// per send: messages reuse the connection's [`hpn_sim::PathId`].
    fn intern_route(&mut self, route: &hpn_routing::router::Route) -> (hpn_sim::PathId, f64) {
        let demand = route
            .links
            .iter()
            .map(|&l| self.fabric.net.link(l).cap_bps)
            .fold(f64::INFINITY, f64::min);
        (self.net.intern_path(&route.flow_links()), demand)
    }

    fn start_flow(
        &mut self,
        conn_id: ConnectionId,
        size_bits: f64,
        msg_id: u64,
    ) -> hpn_sim::FlowHandle {
        let conn = &self.conns[conn_id.0 as usize];
        self.net.start_flow(
            self.now,
            FlowSpec {
                path: conn.path,
                size_bits,
                demand_bps: conn.path_demand_bps,
                tag: msg_id,
            },
        )
    }

    /// Recompute a connection's route under current health, preserving the
    /// sport (the QP survives; only the bond port/plane may change).
    fn refresh_conn_route(&mut self, conn_id: ConnectionId) -> bool {
        let conn = &self.conns[conn_id.0 as usize];
        if conn.src.0 == conn.dst.0 {
            return true; // NVLink routes have no network failure mode here
        }
        let mut req = RouteRequest {
            src_host: conn.src.0,
            src_rail: conn.src.1,
            dst_host: conn.dst.0,
            dst_rail: conn.dst.1,
            sport: conn.sport,
            port: None, // let the bond pick among healthy ports
        };
        // The bond hash only knows local port health; if the chosen plane
        // cannot reach the destination (e.g. the peer's downlink in that
        // plane died), retry each port explicitly — this mirrors the
        // connection re-establishment the collective library performs when
        // it observes a stalled queue pair.
        for (attempt, port) in [None, Some(0), Some(1)].into_iter().enumerate() {
            req.port = port;
            if let Ok(route) = self.router.route(&self.fabric, &self.health, &req) {
                let (path, path_demand_bps) = self.intern_route(&route);
                let conn = &mut self.conns[conn_id.0 as usize];
                conn.route = route;
                conn.path = path;
                conn.path_demand_bps = path_demand_bps;
                self.telemetry.emit(|| Event::PathSearch {
                    t_ns: self.now.as_nanos(),
                    candidates: attempt as u64 + 1,
                    found: 1,
                });
                return true;
            }
        }
        self.telemetry.emit(|| Event::PathSearch {
            t_ns: self.now.as_nanos(),
            candidates: 3,
            found: 0,
        });
        false
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Schedule an application timer; `tag` comes back via
    /// [`ClusterApp::on_timer`].
    pub fn set_timer(&mut self, at: SimTime, tag: u64) {
        assert!(at >= self.now, "timer in the past");
        self.push_timer(at, Timer::App(tag));
    }

    fn push_timer(&mut self, at: SimTime, t: Timer) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timer_payload.insert(seq, t);
        self.timers.push(Reverse((at, seq, 0)));
    }

    fn peek_timer(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse((at, _, _))| *at)
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    /// Physically fail a directed link now; routing converges after the
    /// configured delay. Most callers fail both directions of a cable via
    /// [`ClusterSim::fail_cable`].
    pub fn fail_link(&mut self, link: LinkIdx) {
        self.net.set_link_up(link.flow_link(), false);
        self.push_timer(
            self.now + self.convergence,
            Timer::Converge { link, up: false },
        );
    }

    /// Physically repair a directed link now; routing converges after the
    /// delay.
    pub fn repair_link(&mut self, link: LinkIdx) {
        self.net.set_link_up(link.flow_link(), true);
        self.push_timer(
            self.now + self.convergence,
            Timer::Converge { link, up: true },
        );
    }

    /// Schedule a cable failure/repair at an absolute future time — lets
    /// experiments pre-plan fault scenarios (Fig 18's "link failure at
    /// t=10s") before starting the run loop.
    pub fn schedule_cable_event(&mut self, at: SimTime, link: LinkIdx, up: bool) {
        assert!(at >= self.now, "cable event in the past");
        self.push_timer(at, Timer::CableEvent { link, up });
    }

    /// Fail both directions between the endpoints of `link`.
    pub fn fail_cable(&mut self, link: LinkIdx) {
        let l = self.fabric.net.link(link);
        self.fail_link(link);
        if let Some(rev) = self.fabric.net.link_between(l.dst, l.src) {
            self.fail_link(rev);
        }
    }

    /// Repair both directions between the endpoints of `link`.
    pub fn repair_cable(&mut self, link: LinkIdx) {
        let l = self.fabric.net.link(link);
        self.repair_link(link);
        if let Some(rev) = self.fabric.net.link_between(l.dst, l.src) {
            self.repair_link(rev);
        }
    }

    fn on_converge(&mut self, link: LinkIdx, up: bool) {
        self.health
            .set_recorded(link, up, self.now, &self.telemetry);
        if !up {
            // Re-issue every in-flight message whose path crosses the link.
            let affected: Vec<u64> = self
                .msgs
                .iter()
                .filter(|(_, m)| {
                    m.conn
                        .is_some_and(|c| self.conns[c.0 as usize].route.links.contains(&link))
                        && !m.stalled
                })
                .map(|(&id, _)| id)
                .collect();
            for msg_id in affected {
                self.reroute_msg(msg_id);
            }
        } else {
            // Retry stalled messages.
            let stalled: Vec<u64> = self
                .msgs
                .iter()
                .filter(|(_, m)| m.stalled)
                .map(|(&id, _)| id)
                .collect();
            for msg_id in stalled {
                self.reroute_msg(msg_id);
            }
        }
    }

    fn reroute_msg(&mut self, msg_id: u64) {
        let Some(m) = self.msgs.get(&msg_id) else {
            return;
        };
        let Some(conn_id) = m.conn else { return };
        // Salvage what was already delivered.
        let remaining = m
            .flow
            .and_then(|h| self.net.flow_remaining(h))
            .unwrap_or(m.remaining_bits);
        if remaining <= 0.0 {
            // Already off the wire; its completion timer is pending.
            return;
        }
        if let Some(h) = m.flow {
            self.net.kill_flow(self.now, h);
        }
        self.msgs.get_mut(&msg_id).expect("present").remaining_bits = remaining;
        let routed = self.refresh_conn_route(conn_id);
        let m = self.msgs.get_mut(&msg_id).expect("checked above");
        let rerouted = routed && remaining > 0.0;
        if rerouted {
            m.stalled = false;
            m.flow = None;
            self.stats.reroutes += 1;
            let h = self.start_flow(conn_id, remaining, msg_id);
            self.msgs.get_mut(&msg_id).expect("still present").flow = Some(h);
        } else {
            m.stalled = true;
            m.flow = None;
            self.stats.stalls += 1;
        }
        self.telemetry.emit(|| Event::PathSwitch {
            t_ns: self.now.as_nanos(),
            conn: conn_id.0,
            rerouted,
        });
    }

    // ------------------------------------------------------------------
    // The run loop
    // ------------------------------------------------------------------

    /// The instant of the next pending event (flow completion or timer).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        let t_flow = self.net.next_completion();
        let t_timer = self.peek_timer();
        match (t_flow, t_timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advance to `target`, delivering everything due there.
    fn process_at<A: ClusterApp>(&mut self, app: &mut A, target: SimTime) {
        let dones = self.net.advance(target);
        self.now = target;
        for d in dones {
            self.flow_done(app, d.tag);
        }
        // Fire all timers due at or before `target`.
        while let Some(&Reverse((at, seq, _))) = self.timers.peek() {
            if at > self.now {
                break;
            }
            self.timers.pop();
            let timer = self
                .timer_payload
                .remove(&seq)
                .expect("timer payload present");
            match timer {
                Timer::App(tag) => app.on_timer(self, tag),
                Timer::Converge { link, up } => self.on_converge(link, up),
                Timer::CableEvent { link, up } => {
                    if up {
                        self.repair_cable(link);
                    } else {
                        self.fail_cable(link);
                    }
                }
                Timer::LocalCopyDone(msg_id) => self.complete_msg(app, msg_id),
            }
        }
    }

    /// Process the next pending event, if any. Lets callers interleave
    /// their own stop conditions (e.g. "run until this job finishes").
    pub fn step<A: ClusterApp>(&mut self, app: &mut A) -> bool {
        match self.next_event_time() {
            Some(t) => {
                self.process_at(app, t);
                true
            }
            None => false,
        }
    }

    /// Run until `deadline`, delivering completions and timers to `app`.
    /// Returns at the deadline with time advanced exactly there.
    pub fn run<A: ClusterApp>(&mut self, app: &mut A, deadline: SimTime) {
        assert!(deadline >= self.now, "deadline in the past");
        while let Some(t) = self.next_event_time() {
            if t > deadline {
                break;
            }
            self.process_at(app, t);
        }
        // Nothing left before the deadline.
        let dones = self.net.advance(deadline);
        self.now = deadline;
        for d in dones {
            self.flow_done(app, d.tag);
        }
    }

    /// A message's flow finished on the wire; charge the fixed latency
    /// before declaring the message complete.
    fn flow_done<A: ClusterApp>(&mut self, app: &mut A, msg_id: u64) {
        let Some(m) = self.msgs.get_mut(&msg_id) else {
            return;
        };
        m.flow = None;
        m.remaining_bits = 0.0;
        if m.latency == SimDuration::ZERO {
            self.complete_msg(app, msg_id);
        } else {
            let at = self.now + m.latency;
            self.push_timer(at, Timer::LocalCopyDone(msg_id));
        }
    }

    fn complete_msg<A: ClusterApp>(&mut self, app: &mut A, msg_id: u64) {
        let Some(m) = self.msgs.remove(&msg_id) else {
            return; // already completed via another path (e.g. rerouted twice)
        };
        if let Some(c) = m.conn {
            let conn = &mut self.conns[c.0 as usize];
            conn.wqe_bytes = (conn.wqe_bytes - m.size_bits / 8.0).max(0.0);
            conn.inflight = conn.inflight.saturating_sub(1);
        }
        self.stats.completed += 1;
        app.on_message_complete(
            self,
            MessageDone {
                msg_id,
                conn: m.conn,
                user: m.user,
                size_bits: m.size_bits,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpn_topology::HpnConfig;

    /// Collects completions; optionally records times.
    #[derive(Default)]
    struct Recorder {
        done: Vec<(u64, f64)>, // (user, seconds)
        timers: Vec<(u64, f64)>,
    }

    impl ClusterApp for Recorder {
        fn on_message_complete(&mut self, cs: &mut ClusterSim, d: MessageDone) {
            self.done.push((d.user, cs.now().as_secs_f64()));
        }
        fn on_timer(&mut self, cs: &mut ClusterSim, tag: u64) {
            self.timers.push((tag, cs.now().as_secs_f64()));
        }
    }

    fn sim() -> ClusterSim {
        ClusterSim::new(HpnConfig::tiny().build(), HashMode::Polarized)
    }

    #[test]
    fn cluster_sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ClusterSim>();
    }

    #[test]
    fn with_ctx_picks_allocator_and_recorder() {
        use hpn_telemetry::{EventLog, SharedRecorder};
        let log = EventLog::new();
        let ctx = SimCtx::new()
            .with_recorder(SharedRecorder::new(Box::new(log.clone())))
            .with_allocator(hpn_sim::AllocatorKind::Parallel);
        let cs = ClusterSim::with_ctx(HpnConfig::tiny().build(), HashMode::Polarized, &ctx);
        assert_eq!(cs.net.allocator_kind(), hpn_sim::AllocatorKind::Parallel);
        assert_eq!(log.len(), 1, "SimStart segment marker emitted");
        // The runtime itself can migrate to a worker thread.
        let moved = std::thread::spawn(move || cs.now()).join().expect("worker");
        assert_eq!(moved, SimTime::ZERO);
    }

    #[test]
    fn with_ctx_builds_surrogate_allocator_with_cadence() {
        let ctx = SimCtx::new()
            .with_allocator(hpn_sim::AllocatorKind::Surrogate)
            .with_validate_every(3);
        let cs = ClusterSim::with_ctx(HpnConfig::tiny().build(), HashMode::Polarized, &ctx);
        assert_eq!(cs.net.allocator_kind(), hpn_sim::AllocatorKind::Surrogate);
        assert!(
            cs.net.surrogate_stats().is_some(),
            "surrogate sessions expose cache stats"
        );
    }

    const GB: f64 = 8e9; // 1 gigabyte in bits

    #[test]
    fn single_message_completes_at_port_speed() {
        let mut cs = sim();
        let mut app = Recorder::default();
        let g = cs.establish_group((0, 0), (1, 0), 1, PathPolicy::Single, 49152);
        // 10GB over a 200Gbps port ⇒ 0.4 s, plus ~24µs of fixed latency
        // (20µs message overhead + 4 hops).
        cs.send_group(g, 10.0 * GB, 7);
        cs.run(&mut app, SimTime::from_secs(5));
        assert_eq!(app.done.len(), 1);
        let (user, t) = app.done[0];
        assert_eq!(user, 7);
        assert!((t - 0.400024).abs() < 1e-6, "completed at {t}s");
    }

    #[test]
    fn wqe_counter_rises_and_falls() {
        let mut cs = sim();
        let mut app = Recorder::default();
        let g = cs.establish_group((0, 0), (1, 0), 1, PathPolicy::Single, 49152);
        let cid = cs.group(g).conns[0];
        cs.send_group(g, GB, 0);
        assert!(
            (cs.conn(cid).wqe_bytes - 1e9).abs() < 1.0,
            "1GB outstanding"
        );
        assert_eq!(cs.conn(cid).inflight, 1);
        cs.run(&mut app, SimTime::from_secs(5));
        assert_eq!(cs.conn(cid).wqe_bytes, 0.0);
        assert_eq!(cs.conn(cid).inflight, 0);
    }

    #[test]
    fn least_wqe_spreads_over_disjoint_paths() {
        let mut cs = sim();
        let g = cs.establish_group((0, 0), (1, 0), 2, PathPolicy::LeastWqe, 49152);
        assert_eq!(cs.group(g).conns.len(), 2, "two planes");
        let a = cs.send_group(g, GB, 0);
        let b = cs.send_group(g, GB, 1);
        let (ca, cb) = (cs.msgs[&a].conn.unwrap(), cs.msgs[&b].conn.unwrap());
        assert_ne!(ca, cb, "second message avoids the loaded connection");
    }

    #[test]
    fn local_copy_uses_nvlink_speed() {
        let mut cs = sim();
        let mut app = Recorder::default();
        // 16Gbit / 1600Gbps = 10ms, plus the 20µs per-message overhead.
        cs.send_local(16e9, 1);
        cs.run(&mut app, SimTime::from_secs(1));
        assert_eq!(app.done.len(), 1);
        assert!((app.done[0].1 - 0.01002).abs() < 1e-9);
    }

    #[test]
    fn dual_tor_failover_completes_message() {
        let mut cs = sim();
        let mut app = Recorder::default();
        let g = cs.establish_group((0, 0), (1, 0), 1, PathPolicy::Single, 49152);
        let cid = cs.group(g).conns[0];
        let port = cs.conn(cid).route.port.unwrap();
        let access = cs.fabric.hosts[0].nic_up[0][port].unwrap();
        // 20GB at 200G = 0.8s unperturbed.
        cs.send_group(g, 20.0 * GB, 0);
        // Fail the access link at 0.2s.
        cs.run(&mut app, SimTime::from_millis(200));
        cs.fail_cable(access);
        cs.run(&mut app, SimTime::from_secs(10));
        assert_eq!(app.done.len(), 1, "message survived the failure");
        let t = app.done[0].1;
        // Stalled for the 0.5s convergence window, then finished on the
        // other port: total ≈ 0.8 + 0.5 = 1.3s.
        assert!((t - 1.3).abs() < 0.01, "completed at {t}s");
        assert_eq!(cs.stats().reroutes, 1);
        // And the connection's port flipped.
        assert_eq!(cs.conn(cid).route.port, Some(1 - port));
    }

    #[test]
    fn single_tor_stalls_until_repair() {
        let mut cfg = HpnConfig::tiny();
        cfg.dual_tor = false;
        let mut cs = ClusterSim::new(cfg.build(), HashMode::Polarized);
        let mut app = Recorder::default();
        let g = cs.establish_group((0, 0), (1, 0), 1, PathPolicy::Single, 49152);
        let access = cs.fabric.hosts[0].nic_up[0][0].unwrap();
        // 40GB at 400G (bonded single cable) = 0.8s unperturbed.
        cs.send_group(g, 40.0 * GB, 0);
        cs.run(&mut app, SimTime::from_millis(200));
        cs.fail_cable(access);
        // Two seconds of outage: nothing completes.
        cs.run(&mut app, SimTime::from_millis(2200));
        assert!(app.done.is_empty(), "single-ToR halts");
        cs.repair_cable(access);
        cs.run(&mut app, SimTime::from_secs(10));
        assert_eq!(app.done.len(), 1);
        let t = app.done[0].1;
        // 0.2s sent + 2.0s outage + 0.5s convergence + 0.6s remaining.
        assert!((t - 3.3).abs() < 0.02, "completed at {t}s");
    }

    #[test]
    fn sends_after_failure_use_surviving_port() {
        let mut cs = sim();
        let mut app = Recorder::default();
        let g = cs.establish_group((0, 0), (1, 0), 1, PathPolicy::Single, 49152);
        let cid = cs.group(g).conns[0];
        let port = cs.conn(cid).route.port.unwrap();
        let access = cs.fabric.hosts[0].nic_up[0][port].unwrap();
        cs.fail_cable(access);
        // Let BGP converge with no traffic in flight.
        cs.run(&mut app, SimTime::from_secs(1));
        cs.send_group(g, GB, 5);
        cs.run(&mut app, SimTime::from_secs(5));
        assert_eq!(app.done.len(), 1);
        assert_eq!(cs.stats().stalls, 0, "route refreshed before sending");
        assert_eq!(cs.conn(cid).route.port, Some(1 - port));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut cs = sim();
        let mut app = Recorder::default();
        cs.set_timer(SimTime::from_millis(30), 3);
        cs.set_timer(SimTime::from_millis(10), 1);
        cs.set_timer(SimTime::from_millis(20), 2);
        cs.run(&mut app, SimTime::from_secs(1));
        let tags: Vec<u64> = app.timers.iter().map(|&(t, _)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(cs.now(), SimTime::from_secs(1), "clock lands on deadline");
    }

    #[test]
    fn concurrent_messages_share_bottleneck_fairly() {
        let mut cs = sim();
        let mut app = Recorder::default();
        // Two messages from different source hosts to the SAME destination
        // NIC port share its 200G downlink.
        let g1 = cs.establish_group((0, 0), (2, 0), 1, PathPolicy::Single, 49152);
        let g2 = cs.establish_group((1, 0), (2, 0), 1, PathPolicy::Single, 49152);
        let p1 = cs.conn(cs.group(g1).conns[0]).route.port;
        // Force both onto the same destination plane by construction: if
        // they landed on different planes this test is vacuous, so check.
        let p2 = cs.conn(cs.group(g2).conns[0]).route.port;
        cs.send_group(g1, 10.0 * GB, 1);
        cs.send_group(g2, 10.0 * GB, 2);
        cs.run(&mut app, SimTime::from_secs(10));
        assert_eq!(app.done.len(), 2);
        if p1 == p2 {
            // Shared 200G downlink: both take ~0.8s instead of 0.4s.
            assert!(app.done.iter().all(|&(_, t)| (t - 0.8).abs() < 1e-3));
        }
    }

    #[test]
    fn run_respects_deadline() {
        let mut cs = sim();
        let mut app = Recorder::default();
        let g = cs.establish_group((0, 0), (1, 0), 1, PathPolicy::Single, 49152);
        cs.send_group(g, 100.0 * GB, 0); // 4s of traffic
        cs.run(&mut app, SimTime::from_secs(1));
        assert!(app.done.is_empty());
        assert_eq!(cs.now(), SimTime::from_secs(1));
        assert_eq!(cs.inflight(), 1);
    }
}
