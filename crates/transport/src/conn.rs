//! Connections, connection groups and path-selection policies.

use hpn_routing::router::Route;
use hpn_sim::PathId;

/// Index of a connection within a [`crate::ClusterSim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnectionId(pub u32);

/// Index of a connection group (a disjoint-path set between two endpoints).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// An RDMA-style connection: one QP, one 5-tuple, one current path.
///
/// Because both NIC ports share QP contexts (§4), moving the connection to
/// the other port on failure does not break it — we model that by letting
/// the route (and its port) be replaced while the id, endpoints and WQE
/// counter survive.
#[derive(Clone, Debug)]
pub struct Connection {
    /// Stable id.
    pub id: ConnectionId,
    /// Source `(host, rail)`.
    pub src: (u32, usize),
    /// Destination `(host, rail)`.
    pub dst: (u32, usize),
    /// UDP source port pinned by RePaC.
    pub sport: u16,
    /// Current route (replaced on failover).
    pub route: Route,
    /// The route's links interned in the fluid net — every message on this
    /// connection starts its flow with this handle; re-interned only when
    /// the route is replaced.
    pub path: PathId,
    /// Cached min nominal capacity along the route (the flow demand cap);
    /// refreshed together with `path`.
    pub path_demand_bps: f64,
    /// Outstanding bytes over all active WQEs — the congestion signal of
    /// Appendix B ("a congested connection drains the Work Queue slower").
    pub wqe_bytes: f64,
    /// Messages currently in flight.
    pub inflight: usize,
}

/// How a group picks the connection for the next message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathPolicy {
    /// The paper's scheme (Appendix B Algorithm 2): the connection with the
    /// smallest outstanding-WQE byte counter.
    LeastWqe,
    /// Round-robin over the group — the natural static baseline.
    RoundRobin,
    /// Always the first connection — the single-path baseline.
    Single,
}

/// A disjoint-path connection set between one pair of endpoints.
#[derive(Clone, Debug)]
pub struct ConnGroup {
    /// Stable id.
    pub id: GroupId,
    /// Members (each over a distinct path).
    pub conns: Vec<ConnectionId>,
    /// Selection policy.
    pub policy: PathPolicy,
    /// Round-robin cursor.
    pub rr_next: usize,
}

impl ConnGroup {
    /// Apply the policy: pick the member for the next message.
    /// `wqe_of` reports each member's current counter.
    pub fn pick(&mut self, wqe_of: impl Fn(ConnectionId) -> f64) -> ConnectionId {
        assert!(!self.conns.is_empty(), "empty connection group");
        match self.policy {
            PathPolicy::Single => self.conns[0],
            PathPolicy::RoundRobin => {
                let c = self.conns[self.rr_next % self.conns.len()];
                self.rr_next = (self.rr_next + 1) % self.conns.len();
                c
            }
            PathPolicy::LeastWqe => {
                // getLeastLoad of Algorithm 2: minimal WQE_i; ties break to
                // the lowest id for determinism.
                *self
                    .conns
                    .iter()
                    .min_by(|&&a, &&b| {
                        wqe_of(a)
                            .partial_cmp(&wqe_of(b))
                            .expect("WQE counters are never NaN")
                            .then(a.cmp(&b))
                    })
                    .expect("non-empty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(policy: PathPolicy, n: u32) -> ConnGroup {
        ConnGroup {
            id: GroupId(0),
            conns: (0..n).map(ConnectionId).collect(),
            policy,
            rr_next: 0,
        }
    }

    #[test]
    fn least_wqe_picks_emptiest_queue() {
        let mut g = group(PathPolicy::LeastWqe, 3);
        let wqe = |c: ConnectionId| match c.0 {
            0 => 100.0,
            1 => 5.0,
            _ => 50.0,
        };
        assert_eq!(g.pick(wqe), ConnectionId(1));
    }

    #[test]
    fn least_wqe_ties_break_deterministically() {
        let mut g = group(PathPolicy::LeastWqe, 3);
        assert_eq!(g.pick(|_| 0.0), ConnectionId(0));
    }

    #[test]
    fn round_robin_cycles() {
        let mut g = group(PathPolicy::RoundRobin, 3);
        let picks: Vec<u32> = (0..6).map(|_| g.pick(|_| 0.0).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn single_sticks() {
        let mut g = group(PathPolicy::Single, 3);
        for _ in 0..5 {
            assert_eq!(g.pick(|_| 0.0), ConnectionId(0));
        }
    }

    #[test]
    #[should_panic(expected = "empty connection group")]
    fn empty_group_panics() {
        let mut g = ConnGroup {
            id: GroupId(0),
            conns: vec![],
            policy: PathPolicy::Single,
            rr_next: 0,
        };
        g.pick(|_| 0.0);
    }
}
