//! # hpn-transport — RDMA connections and the cluster simulation runtime
//!
//! This crate turns routes into running traffic:
//!
//! * [`conn`] — RDMA-style connections between `(host, rail)` endpoints.
//!   Each connection pins one 5-tuple (and therefore one path) and carries
//!   the Work-Queue-Element byte counter the paper's application-layer load
//!   balancing reads (Appendix B). Connection **groups** hold the
//!   disjoint-path sets produced by `EstablishConns` and implement the
//!   `getLeastLoad` selection policy alongside baselines for ablation.
//! * [`cluster`] — [`cluster::ClusterSim`], the runtime: it owns the fluid
//!   [`hpn_sim::FlowNet`], the [`hpn_routing::Router`] and the converged
//!   [`hpn_routing::LinkHealth`] view, maps messages onto flows, delivers
//!   completions to a [`cluster::ClusterApp`], and implements dual-ToR
//!   failover: on a link failure the physical network reacts instantly
//!   while the routing view lags by the BGP convergence delay, after which
//!   in-flight messages are transparently re-issued on surviving paths
//!   (same QP context, §4: "transparent to upper-layer applications").

#![warn(missing_docs)]

pub mod cluster;
pub mod conn;

pub use cluster::{ClusterApp, ClusterSim, MessageDone};
pub use conn::{ConnectionId, GroupId, PathPolicy};
