//! Property-based tests for the cluster runtime: conservation and
//! liveness invariants under random traffic and random failures.

use hpn_routing::HashMode;
use hpn_sim::{SimDuration, SimTime};
use hpn_topology::HpnConfig;
use hpn_transport::{ClusterApp, ClusterSim, MessageDone, PathPolicy};
use proptest::prelude::*;

#[derive(Default)]
struct Counter {
    done: usize,
    bits: f64,
}
impl ClusterApp for Counter {
    fn on_message_complete(&mut self, _: &mut ClusterSim, d: MessageDone) {
        self.done += 1;
        self.bits += d.size_bits;
    }
}

fn sim() -> ClusterSim {
    ClusterSim::new(HpnConfig::tiny().build(), HashMode::Polarized)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every message sent on a healthy fabric completes, and the delivered
    /// bits equal the sent bits (conservation).
    #[test]
    fn all_messages_complete_and_conserve_bits(
        sends in proptest::collection::vec(
            (0u32..8, 0u32..8, 0usize..2, 1u64..50), 1..30
        ),
    ) {
        let mut cs = sim();
        let mut app = Counter::default();
        let mut total = 0.0;
        let mut groups = std::collections::BTreeMap::new();
        for (i, &(src, dst, rail, gbits)) in sends.iter().enumerate() {
            let (src, dst) = (src % 8, dst % 8);
            if src == dst {
                continue;
            }
            let g = *groups.entry((src, dst, rail)).or_insert_with(|| {
                cs.establish_group(
                    (src, rail),
                    (dst, rail),
                    2,
                    PathPolicy::LeastWqe,
                    40_000 + i as u16 * 97,
                )
            });
            let bits = gbits as f64 * 1e8;
            cs.send_group(g, bits, i as u64);
            total += bits;
        }
        cs.run(&mut app, SimTime::from_secs(600));
        prop_assert_eq!(cs.inflight(), 0, "no message left behind");
        prop_assert!((app.bits - total).abs() < 1.0,
            "delivered {} of {} bits", app.bits, total);
        prop_assert_eq!(app.done as u64, cs.stats().completed);
    }

    /// A fail→repair cycle on any access cable never loses a message in a
    /// dual-ToR fabric: everything completes after repair.
    #[test]
    fn fail_repair_cycle_loses_nothing(
        host in 0u32..8,
        rail in 0usize..2,
        port in 0usize..2,
        fail_ms in 1u64..500,
        outage_ms in 1u64..5_000,
        n_msgs in 1usize..8,
    ) {
        let mut cs = sim();
        let mut app = Counter::default();
        let dst = (host + 1) % 8;
        let g = cs.establish_group((host, rail), (dst, rail), 2, PathPolicy::LeastWqe, 45_000);
        for i in 0..n_msgs {
            cs.send_group(g, 40e9, i as u64); // 5GB each
        }
        let cable = cs.fabric.hosts[host as usize].nic_up[rail][port].unwrap();
        cs.schedule_cable_event(SimTime::from_millis(fail_ms), cable, false);
        cs.schedule_cable_event(
            SimTime::from_millis(fail_ms) + SimDuration::from_millis(outage_ms),
            cable,
            true,
        );
        cs.run(&mut app, SimTime::from_secs(3600));
        prop_assert_eq!(app.done, n_msgs, "all messages delivered despite the outage");
        prop_assert_eq!(cs.inflight(), 0);
    }

    /// WQE counters return to zero once the cluster drains — no counter
    /// leaks through reroutes or group fan-out.
    #[test]
    fn wqe_counters_drain_to_zero(
        n_msgs in 1usize..16,
        conns in 1usize..4,
    ) {
        let mut cs = sim();
        let mut app = Counter::default();
        let g = cs.establish_group((0, 0), (3, 0), conns, PathPolicy::LeastWqe, 50_000);
        for i in 0..n_msgs {
            cs.send_group(g, 8e9, i as u64);
        }
        cs.run(&mut app, SimTime::from_secs(600));
        for &c in &cs.group(g).conns.clone() {
            prop_assert_eq!(cs.conn(c).wqe_bytes, 0.0, "counter leak on {:?}", c);
            prop_assert_eq!(cs.conn(c).inflight, 0);
        }
    }
}
