//! Checkpoint economics (§2.3, Fig 4).
//!
//! Checkpoints are expensive (≈30 GB per GPU, ≈100 s to save), so
//! production jobs checkpoint every 2–4 hours and accept that a failure
//! rolls the job back to the last checkpoint. At $20K/hour for a 3K-GPU
//! job, one failure costs ≈$30K — the paper's "20× more costly than
//! general cloud computing" argument, and the economic case for dual-ToR.

use hpn_sim::SimDuration;

/// A job's checkpointing policy.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPolicy {
    /// Time between checkpoints.
    pub interval: SimDuration,
    /// Training stall while a checkpoint is saved.
    pub save_time: SimDuration,
    /// Checkpoint bytes per GPU.
    pub bytes_per_gpu: f64,
}

impl CheckpointPolicy {
    /// A representative production policy (Fig 4's mid-range).
    pub fn production(hours: f64) -> Self {
        assert!(hours > 0.0);
        CheckpointPolicy {
            interval: SimDuration::from_secs_f64(hours * 3600.0),
            save_time: SimDuration::from_secs(100),
            bytes_per_gpu: 30e9,
        }
    }

    /// The four representative LLM jobs of Fig 4 (intervals in hours).
    pub fn fig4_jobs() -> Vec<(String, CheckpointPolicy)> {
        [("LLM1", 2.0), ("LLM2", 2.5), ("LLM3", 3.5), ("LLM4", 4.0)]
            .into_iter()
            .map(|(n, h)| (n.to_string(), Self::production(h)))
            .collect()
    }

    /// Fraction of wall-clock time lost to checkpointing, including the
    /// write-amplification and stall effects the paper folds into its
    /// "around 5%" figure (§2.3). The direct save stall is
    /// `save_time / interval`; production adds pipeline-drain and
    /// re-warm costs of roughly 3× the raw save.
    pub fn overhead_fraction(&self) -> f64 {
        let direct = self.save_time.as_secs_f64() / self.interval.as_secs_f64();
        (direct * 4.0).min(1.0)
    }

    /// Expected work lost when a failure strikes at a uniformly random
    /// point of the interval, plus the restart time.
    pub fn expected_rollback(&self, restart: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.interval.as_secs_f64() / 2.0) + restart
    }

    /// Dollar cost of a failure for a job of `gpus` GPUs at
    /// `usd_per_gpu_hour`, given the rollback time.
    pub fn failure_cost_usd(
        &self,
        gpus: usize,
        usd_per_gpu_hour: f64,
        restart: SimDuration,
    ) -> f64 {
        let lost_hours = self.expected_rollback(restart).as_secs_f64() / 3600.0;
        gpus as f64 * usd_per_gpu_hour * lost_hours
    }
}

/// The paper's quoted training price: $20K/hour for 3K GPUs.
pub const USD_PER_GPU_HOUR: f64 = 20_000.0 / 3_000.0;

/// Simulate saving a checkpoint over the frontend network (§8): every
/// training host streams its GPUs' state (`bytes_per_host`) through its
/// 2×200G frontend NIC, striped across the CPFS/OSS storage hosts. Returns
/// the wall-clock save time — the quantity behind the "~100s to save 30GB
/// per GPU" figure and the 1:1 frontend convergence requirement.
pub fn frontend_save_time(
    fe: &hpn_topology::frontend::FrontendNet,
    train_hosts: usize,
    bytes_per_host: f64,
) -> SimDuration {
    use hpn_sim::{FlowNet, FlowSpec, SimTime};
    assert!(train_hosts <= fe.train_nics.len(), "more savers than hosts");
    assert!(!fe.storage.is_empty(), "no storage cluster");
    let mut net: FlowNet = fe.net.to_flownet();
    // Each host stripes its checkpoint over both NIC ports and over the
    // storage hosts round-robin; each stripe is an independent flow whose
    // path is hand-assembled (host → ToR → storage via the shared Agg pool
    // is unnecessary here: frontend ToR pairs differ per endpoint, so we
    // ride ToR→Agg→ToR like the backend router would).
    let mut tag = 0u64;
    for h in 0..train_hosts {
        let storage_idx = h % fe.storage.len();
        for port in 0..2 {
            let up = fe.train_up[h][port];
            let tor = fe.net.link(up).dst;
            let sdown = fe.storage_down[storage_idx][port];
            let stor = fe.net.link(sdown).src;
            // Pick the Agg deterministically per (host, port).
            let aggs = fe.aggs.len();
            let agg = fe.aggs[(h * 2 + port) % aggs];
            let l_up = fe.net.link_between(tor, agg).expect("ToR wired to Agg");
            let l_down = fe.net.link_between(agg, stor).expect("Agg wired to ToR");
            let path: Vec<hpn_sim::LinkId> = if tor == stor {
                vec![up.flow_link(), sdown.flow_link()]
            } else {
                vec![
                    up.flow_link(),
                    l_up.flow_link(),
                    l_down.flow_link(),
                    sdown.flow_link(),
                ]
            };
            let path = net.intern_path(&path);
            net.start_flow(
                SimTime::ZERO,
                FlowSpec {
                    path,
                    size_bits: bytes_per_host * 8.0 / 2.0, // split over ports
                    demand_bps: 200e9,
                    tag,
                },
            );
            tag += 1;
        }
    }
    let mut last = SimTime::ZERO;
    let mut guard = 0;
    while net.flow_count() > 0 {
        let t = net.next_completion().expect("flows progress");
        net.advance(t);
        last = t;
        guard += 1;
        assert!(guard < 1_000_000, "save simulation runaway");
    }
    last - SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpn_topology::frontend::{build_frontend, FrontendConfig};

    #[test]
    fn frontend_save_is_network_floor_bounded() {
        let fe = build_frontend(&FrontendConfig::tiny());
        // One host, 240GB (8 GPUs × 30GB) over 2×200G: floor = 4.8s.
        let t = frontend_save_time(&fe, 1, 240e9);
        assert!(
            (t.as_secs_f64() - 4.8).abs() < 0.1,
            "single-host save {}s vs 4.8s floor",
            t.as_secs_f64()
        );
    }

    #[test]
    fn concurrent_savers_contend_for_storage() {
        let fe = build_frontend(&FrontendConfig::tiny());
        let solo = frontend_save_time(&fe, 1, 240e9);
        // 4 savers over 2 storage hosts: at least 2× the solo time.
        let crowd = frontend_save_time(&fe, 4, 240e9);
        assert!(
            crowd.as_secs_f64() >= solo.as_secs_f64() * 1.9,
            "crowded save {}s vs solo {}s",
            crowd.as_secs_f64(),
            solo.as_secs_f64()
        );
    }

    #[test]
    fn fig4_intervals_span_two_to_four_hours() {
        let jobs = CheckpointPolicy::fig4_jobs();
        assert_eq!(jobs.len(), 4);
        for (_, p) in &jobs {
            let h = p.interval.as_secs_f64() / 3600.0;
            assert!((2.0..=4.0).contains(&h), "interval {h}h");
        }
    }

    #[test]
    fn overhead_is_around_five_percent() {
        // §2.3: "the overhead introduced by checkpointing is still around
        // 5%" at 2–4h intervals.
        for (_, p) in CheckpointPolicy::fig4_jobs() {
            let o = p.overhead_fraction();
            assert!((0.02..=0.07).contains(&o), "overhead {o}");
        }
    }

    #[test]
    fn failure_cost_matches_paper_quote() {
        // 3K GPUs, 2-3h interval ⇒ ~1.5h rollback ⇒ ≈$30K loss (§2.3).
        let p = CheckpointPolicy::production(3.0);
        let cost = p.failure_cost_usd(3000, USD_PER_GPU_HOUR, SimDuration::from_secs(600));
        assert!(
            (25_000.0..=40_000.0).contains(&cost),
            "failure cost ${cost}"
        );
    }

    #[test]
    fn rollback_grows_with_interval() {
        let short = CheckpointPolicy::production(2.0);
        let long = CheckpointPolicy::production(4.0);
        let r = SimDuration::from_secs(600);
        assert!(long.expected_rollback(r) > short.expected_rollback(r));
    }
}
