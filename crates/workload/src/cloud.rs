//! General cloud-computing traffic (Fig 1) — the contrast class.
//!
//! Traditional cloud instances hold hundreds of thousands of long-lived
//! connections whose aggregate rate stays under a few Gbps (<20% of NIC
//! capacity) and drifts on an hourly scale. The generator below produces a
//! 24-hour trace with exactly those properties so the fig01 experiment can
//! plot it next to the LLM burst trace of fig02, and so the hashing
//! experiments have a realistic high-entropy flow population.

use hpn_sim::{SimTime, TimeSeries, Xoshiro256};

/// A synthetic 24-hour cloud trace.
#[derive(Clone, Debug)]
pub struct CloudTrace {
    /// Connection count over time (thousands).
    pub connections_k: TimeSeries,
    /// Ingress traffic (Gbps).
    pub traffic_in: TimeSeries,
    /// Egress traffic (Gbps).
    pub traffic_out: TimeSeries,
}

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct CloudParams {
    /// Mean connection count (thousands).
    pub mean_connections_k: f64,
    /// Diurnal swing as a fraction of the mean.
    pub diurnal_swing: f64,
    /// Mean aggregate rate in Gbps (Fig 1 peaks near 2 Gbps).
    pub mean_gbps: f64,
    /// Sample period in seconds.
    pub sample_secs: u64,
}

impl Default for CloudParams {
    fn default() -> Self {
        CloudParams {
            mean_connections_k: 150.0,
            diurnal_swing: 0.35,
            mean_gbps: 1.3,
            sample_secs: 300,
        }
    }
}

/// Generate a 24-hour trace.
pub fn generate(params: &CloudParams, seed: u64) -> CloudTrace {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut connections_k = TimeSeries::new("Connection");
    let mut traffic_in = TimeSeries::new("Traffic-In");
    let mut traffic_out = TimeSeries::new("Traffic-Out");
    let total = 24 * 3600 / params.sample_secs;
    for i in 0..=total {
        let t = SimTime::from_secs(i * params.sample_secs);
        let hour = t.as_secs_f64() / 3600.0;
        // Diurnal curve peaking mid-day, hourly-scale drift only.
        let diurnal =
            1.0 + params.diurnal_swing * (std::f64::consts::TAU * (hour - 14.0) / 24.0).cos();
        let conn = params.mean_connections_k * diurnal * rng.uniform(0.97, 1.03);
        let tin = params.mean_gbps * diurnal * rng.uniform(0.85, 1.15);
        let tout = params.mean_gbps * 0.8 * diurnal * rng.uniform(0.85, 1.15);
        connections_k.push(t, conn);
        traffic_in.push(t, tin);
        traffic_out.push(t, tout);
    }
    CloudTrace {
        connections_k,
        traffic_in,
        traffic_out,
    }
}

/// Synthesize a high-entropy flow population (for the hashing ablation):
/// `n` flows with rates that sum to roughly `total_gbps`, exponential-ish
/// sizes — the opposite of LLM training's few elephant flows.
pub fn flow_population(n: usize, total_gbps: f64, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mean = total_gbps / n as f64;
    (0..n).map(|_| rng.exponential(mean)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_fig1_properties() {
        let tr = generate(&CloudParams::default(), 1);
        // 24h at 5-min samples.
        assert_eq!(tr.connections_k.len(), 289);
        // Hundreds of thousands of connections.
        assert!(tr.connections_k.mean() > 90.0);
        assert!(tr.connections_k.max() < 250.0);
        // Aggregate traffic low and bounded (< 20% of a 25G front NIC,
        // i.e. well under 5 Gbps; Fig 1 shows ≈2 Gbps peaks).
        assert!(tr.traffic_in.max() < 3.0, "in {}", tr.traffic_in.max());
        assert!(tr.traffic_out.max() < 3.0);
        assert!(tr.traffic_in.min() > 0.0);
    }

    #[test]
    fn trace_varies_slowly() {
        // Hourly-scale variation: adjacent 5-min samples differ by < 15%.
        let tr = generate(&CloudParams::default(), 2);
        for w in tr.connections_k.samples().windows(2) {
            let rel = (w[1].1 - w[0].1).abs() / w[0].1;
            assert!(rel < 0.15, "jumped {rel} between samples");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CloudParams::default(), 7);
        let b = generate(&CloudParams::default(), 7);
        assert_eq!(a.traffic_in.samples(), b.traffic_in.samples());
    }

    #[test]
    fn flow_population_sums_to_target() {
        let flows = flow_population(10_000, 100.0, 3);
        let total: f64 = flows.iter().sum();
        assert!((total - 100.0).abs() / 100.0 < 0.05, "total {total}");
        // High entropy: no flow dominates.
        let max = flows.iter().cloned().fold(0.0, f64::max);
        assert!(max < 1.0, "an elephant appeared: {max} Gbps");
    }
}
