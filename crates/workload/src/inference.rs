//! Inference serving over the frontend network (§8).
//!
//! HPN's frontend gives every host a 2×200Gbps NIC, and the paper argues
//! this makes training hosts "flexibly used for both training and
//! inference". This module quantifies that claim: token streams are tiny
//! compared to 400Gbps, so the frontend NIC is never the serving
//! bottleneck — model loading is the only bandwidth-intensive phase, and
//! even an 80GB checkpoint pulls in seconds.

use hpn_sim::SimDuration;

/// A serving profile for one model on one 8-GPU host.
#[derive(Clone, Debug)]
pub struct ServingProfile {
    /// Display name.
    pub name: String,
    /// Requests the host can decode per second (compute-bound).
    pub requests_per_sec: f64,
    /// Mean request payload (prompt) in bytes.
    pub request_bytes: f64,
    /// Mean response payload (completion) in bytes.
    pub response_bytes: f64,
    /// Model weights to load at startup, bytes.
    pub weights_bytes: f64,
}

impl ServingProfile {
    /// Representative profiles (per 8-GPU host).
    pub fn catalog() -> Vec<ServingProfile> {
        vec![
            ServingProfile {
                name: "LLaMa-7B".into(),
                requests_per_sec: 400.0,
                request_bytes: 4e3,
                response_bytes: 2e3,
                weights_bytes: 14e9,
            },
            ServingProfile {
                name: "LLaMa-13B".into(),
                requests_per_sec: 220.0,
                request_bytes: 4e3,
                response_bytes: 2e3,
                weights_bytes: 26e9,
            },
            ServingProfile {
                name: "GPT-3 175B".into(),
                requests_per_sec: 40.0,
                request_bytes: 8e3,
                response_bytes: 4e3,
                weights_bytes: 350e9,
            },
        ]
    }

    /// Steady-state frontend bandwidth the serving traffic needs, bits/s.
    pub fn serving_bps(&self) -> f64 {
        self.requests_per_sec * (self.request_bytes + self.response_bytes) * 8.0
    }

    /// Fraction of the 2×200G frontend NIC the serving traffic occupies.
    pub fn frontend_utilization(&self, frontend_bps: f64) -> f64 {
        self.serving_bps() / frontend_bps
    }

    /// Time to pull the weights over the frontend NIC (network floor).
    pub fn load_time(&self, frontend_bps: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.weights_bytes * 8.0 / frontend_bps)
    }
}

/// The frontend NIC bandwidth of §8 (2×200Gbps).
pub const FRONTEND_NIC_BPS: f64 = 400e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_traffic_is_negligible_on_the_frontend() {
        // §8's claim: the 2×200G frontend comfortably carries inference.
        for p in ServingProfile::catalog() {
            let util = p.frontend_utilization(FRONTEND_NIC_BPS);
            assert!(
                util < 0.001,
                "{}: serving occupies {:.4}% of the frontend NIC",
                p.name,
                util * 100.0
            );
        }
    }

    #[test]
    fn model_load_is_seconds_not_minutes() {
        for p in ServingProfile::catalog() {
            let t = p.load_time(FRONTEND_NIC_BPS).as_secs_f64();
            assert!(
                t < 10.0,
                "{}: loading {}GB takes {t:.1}s over the frontend",
                p.name,
                p.weights_bytes / 1e9
            );
        }
    }

    #[test]
    fn bigger_models_serve_fewer_requests_but_load_longer() {
        let c = ServingProfile::catalog();
        assert!(c[0].requests_per_sec > c[2].requests_per_sec);
        assert!(c[2].load_time(FRONTEND_NIC_BPS) > c[0].load_time(FRONTEND_NIC_BPS));
    }
}
