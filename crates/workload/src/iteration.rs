//! One training iteration compiled to an op graph.
//!
//! The iteration model follows §2.1/§2.2: all GPUs compute forward +
//! backward (with TP synchronization riding NVLink inside the host), then
//! pipeline stages exchange activation shards (PP Send/Recv), and the
//! backward phase ends with the gradient burst — per-rail Multi-AllReduce
//! across each stage's DP group, the traffic that "instantly fulfills the
//! network capacity" in Fig 2.
//!
//! Rank convention: host-major over the job's host list
//! (`rank = host_index × rails + rail`), which is also the order
//! [`TrainingJob::ranks`] returns for communicator construction. The host
//! list itself is **stage-major** (`hosts[d·pp + s]`, see
//! [`crate::parallel::ParallelismPlan::host_of`]), so placing consecutive
//! hosts in one segment keeps DP rings segment-local exactly when the
//! scheduler wants it.

use hpn_collectives::graph::{emit_ring, OpGraph, OpKind};
use hpn_sim::SimDuration;

use crate::model::ModelSpec;
use crate::parallel::ParallelismPlan;
use crate::traffic;

/// A placed training job.
#[derive(Clone, Debug)]
pub struct TrainingJob {
    /// The model being trained.
    pub model: ModelSpec,
    /// Parallelism plan; `tp` must equal `rails`.
    pub plan: ParallelismPlan,
    /// Host ids, stage-major (`hosts[d·pp + s]`).
    pub hosts: Vec<u32>,
    /// GPUs (rails) per host.
    pub rails: usize,
    /// Microbatches per iteration (PP/TP volume multiplier).
    pub micro_batches: usize,
    /// Samples per iteration.
    pub global_batch: usize,
    /// Use NVLS in-switch aggregation for intra-host phases.
    pub nvls: bool,
    /// Fluid ring granularity.
    pub rounds: usize,
}

impl TrainingJob {
    /// Place a job. `hosts.len()` must equal `pp × dp` and `rails` must
    /// equal `tp` (the TP group is the NVLink domain).
    pub fn new(
        model: ModelSpec,
        plan: ParallelismPlan,
        hosts: Vec<u32>,
        rails: usize,
        global_batch: usize,
    ) -> Self {
        assert_eq!(
            hosts.len(),
            plan.pp * plan.dp,
            "host list must cover pp×dp stages"
        );
        assert_eq!(plan.tp, rails, "TP group must fill the host's rails");
        assert!(global_batch > 0, "empty batch");
        TrainingJob {
            model,
            plan,
            hosts,
            rails,
            micro_batches: 8,
            global_batch,
            nvls: true,
            rounds: 2,
        }
    }

    /// Total GPUs.
    pub fn gpus(&self) -> usize {
        self.hosts.len() * self.rails
    }

    /// Rank endpoints, host-major — feed this to the communicator.
    pub fn ranks(&self) -> Vec<(u32, usize)> {
        self.hosts
            .iter()
            .flat_map(|&h| (0..self.rails).map(move |r| (h, r)))
            .collect()
    }

    fn rank_of(&self, host_idx: usize, rail: usize) -> u32 {
        (host_idx * self.rails + rail) as u32
    }

    /// Compile one iteration.
    pub fn iteration_graph(&self) -> OpGraph {
        let mut g = OpGraph::new();
        let nhosts = self.hosts.len();
        let compute = self.model.compute_time(self.global_batch, self.gpus());
        let t3 = traffic::table3(&self.model, &self.plan);

        // Forward+backward compute, then TP sync time on NVLink.
        let mut gate: Vec<Vec<u32>> = Vec::with_capacity(nhosts * self.rails);
        for h in 0..nhosts {
            for r in 0..self.rails {
                let rank = self.rank_of(h, r);
                let c = g.add(OpKind::Compute { rank, dur: compute }, vec![]);
                let tp_bits = t3.tp_bytes * 8.0 * self.micro_batches as f64;
                let t = if self.plan.tp > 1 {
                    g.add(
                        OpKind::Copy {
                            rank,
                            bits: tp_bits,
                        },
                        vec![c],
                    )
                } else {
                    c
                };
                gate.push(vec![t]);
            }
        }

        // PP stage sends (aggregated over microbatches), per rail.
        if self.plan.pp > 1 {
            let pp_bits = t3.pp_bytes * 8.0 * self.micro_batches as f64;
            for d in 0..self.plan.dp {
                for s in 0..self.plan.pp - 1 {
                    let src_h = self.plan.host_of(d, s);
                    let dst_h = self.plan.host_of(d, s + 1);
                    for r in 0..self.rails {
                        let src = self.rank_of(src_h, r);
                        let dst = self.rank_of(dst_h, r);
                        g.add(
                            OpKind::Send {
                                src,
                                dst,
                                bits: pp_bits,
                            },
                            gate[src as usize].clone(),
                        );
                    }
                }
            }
        }

        // DP gradient sync: per (stage, rail) ring over the DP group —
        // Multi-AllReduce, all bytes on the inter-host network.
        if self.plan.dp > 1 {
            let per_member =
                2.0 * t3.dp_bytes * 8.0 * (self.plan.dp as f64 - 1.0) / self.plan.dp as f64;
            for s in 0..self.plan.pp {
                for r in 0..self.rails {
                    let ring: Vec<u32> = (0..self.plan.dp)
                        .map(|d| self.rank_of(self.plan.host_of(d, s), r))
                        .collect();
                    let entry: Vec<Vec<u32>> = ring
                        .iter()
                        .map(|&rank| gate[rank as usize].clone())
                        .collect();
                    emit_ring(&mut g, &ring, per_member, self.rounds, &entry);
                }
            }
        }
        g
    }

    /// Throughput for a measured iteration duration.
    pub fn samples_per_second(&self, iteration: SimDuration) -> f64 {
        self.global_batch as f64 / iteration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    fn job(pp: usize, dp: usize, rails: usize) -> TrainingJob {
        let plan = ParallelismPlan::new(rails, pp, dp);
        let hosts: Vec<u32> = (0..(pp * dp) as u32).collect();
        TrainingJob::new(ModelSpec::llama_7b(), plan, hosts, rails, 512)
    }

    #[test]
    fn ranks_are_host_major() {
        let j = job(1, 2, 2);
        assert_eq!(j.ranks(), vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(j.gpus(), 4);
    }

    #[test]
    fn graph_has_expected_op_classes() {
        let j = job(2, 2, 2);
        let g = j.iteration_graph();
        let mut computes = 0;
        let mut copies = 0;
        let mut sends = 0;
        for op in g.ops() {
            match op.kind {
                OpKind::Compute { .. } => computes += 1,
                OpKind::Copy { .. } => copies += 1,
                OpKind::Send { .. } => sends += 1,
            }
        }
        assert_eq!(computes, j.gpus());
        assert_eq!(copies, j.gpus(), "one TP sync per GPU");
        // PP: dp × (pp−1) × rails. DP rings: pp × rails × dp members × rounds.
        let pp_sends = 2 * 2;
        let dp_sends = 2 * 2 * 2 * j.rounds;
        assert_eq!(sends, pp_sends + dp_sends);
    }

    #[test]
    fn dp1_emits_no_rings_pp1_no_sends() {
        let j = job(1, 1, 2);
        let g = j.iteration_graph();
        assert!(g
            .ops()
            .iter()
            .all(|op| !matches!(op.kind, OpKind::Send { .. })));
    }

    #[test]
    fn network_traffic_matches_table3_composition() {
        let j = job(2, 4, 2);
        let g = j.iteration_graph();
        let t3 = traffic::table3(&j.model, &j.plan);
        let ranks = j.ranks();
        let (net, _) = g.traffic_split(|a, b| ranks[a as usize].0 == ranks[b as usize].0);
        let pp_total = (j.plan.dp * (j.plan.pp - 1) * j.rails) as f64
            * t3.pp_bytes
            * 8.0
            * j.micro_batches as f64;
        let dp_total = (j.plan.pp * j.rails * j.plan.dp) as f64
            * 2.0
            * t3.dp_bytes
            * 8.0
            * (j.plan.dp as f64 - 1.0)
            / j.plan.dp as f64;
        assert!(
            (net - (pp_total + dp_total)).abs() / net < 1e-9,
            "network bits {net} vs {}",
            pp_total + dp_total
        );
    }

    #[test]
    fn samples_per_second_definition() {
        let j = job(1, 2, 2);
        assert_eq!(j.samples_per_second(SimDuration::from_secs(2)), 256.0);
    }

    #[test]
    #[should_panic(expected = "cover pp×dp")]
    fn wrong_host_count_rejected() {
        let plan = ParallelismPlan::new(2, 2, 2);
        TrainingJob::new(ModelSpec::llama_7b(), plan, vec![0, 1], 2, 64);
    }
}
