//! Production job sizes (Fig 6).
//!
//! The paper's CDF of GPUs per training job: about 96.3% of jobs need at
//! most 1K GPUs (hence "one segment covers 96.3% of jobs", §3/§5), and no
//! job exceeds 3K (hence a 15K pod covers 100%, §6.2). We encode a
//! piecewise-linear CDF with those two anchors pinned exactly and a
//! plausible small-job body, and derive a sampler by inverse transform.

use hpn_sim::Xoshiro256;

/// `(gpus, P(size ≤ gpus))` anchors, strictly increasing in both
/// coordinates. The 1024 → 0.963 and 2944 → 1.0 anchors are the paper's;
/// the body is synthetic.
pub const CDF_ANCHORS: &[(f64, f64)] = &[
    (8.0, 0.18),
    (16.0, 0.32),
    (64.0, 0.55),
    (128.0, 0.70),
    (256.0, 0.81),
    (512.0, 0.89),
    (1024.0, 0.963),
    (2048.0, 0.99),
    (2944.0, 1.0),
];

/// P(job size ≤ gpus).
pub fn cdf(gpus: f64) -> f64 {
    if gpus < CDF_ANCHORS[0].0 {
        return gpus.max(0.0) / CDF_ANCHORS[0].0 * CDF_ANCHORS[0].1;
    }
    for w in CDF_ANCHORS.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if gpus <= x1 {
            return y0 + (y1 - y0) * (gpus - x0) / (x1 - x0);
        }
    }
    1.0
}

/// Sample a job size in GPUs (multiple of 8 — whole hosts).
pub fn sample(rng: &mut Xoshiro256) -> u32 {
    let u = rng.next_f64();
    // Inverse transform over the piecewise-linear CDF.
    let mut prev = (0.0f64, 0.0f64);
    for &(x, y) in CDF_ANCHORS {
        if u <= y {
            let (x0, y0) = prev;
            let frac = if y > y0 { (u - y0) / (y - y0) } else { 0.0 };
            let g = x0 + (x - x0) * frac;
            return ((g / 8.0).ceil() as u32).max(1) * 8;
        }
        prev = (x, y);
    }
    2944
}

/// The headline fraction: jobs that fit in one 1K-GPU segment.
pub fn fraction_within_one_segment() -> f64 {
    cdf(1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchors_pinned() {
        assert!((fraction_within_one_segment() - 0.963).abs() < 1e-9);
        assert_eq!(cdf(2944.0), 1.0);
        assert_eq!(cdf(10_000.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = -1.0;
        for g in (0..3000).step_by(8) {
            let c = cdf(g as f64);
            assert!(c >= prev, "CDF decreased at {g}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn samples_respect_the_distribution() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<u32> = (0..n).map(|_| sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s % 8 == 0 && s > 0));
        let max = *samples.iter().max().unwrap();
        assert!(max <= 2944, "no job exceeds 3K GPUs, got {max}");
        let within_1k = samples.iter().filter(|&&s| s <= 1024).count() as f64 / n as f64;
        assert!(
            (within_1k - 0.963).abs() < 0.01,
            "96.3% within a segment, got {within_1k}"
        );
    }
}
