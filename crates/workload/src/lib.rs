//! # hpn-workload — what runs on the fabric
//!
//! * [`model`] — LLM descriptions (GPT-3 175B variant, LLaMa-7B/13B) with
//!   the architectural constants the traffic formulas need, plus a
//!   calibrated compute-time model.
//! * [`parallel`] — Megatron-style TP/PP/DP plans and their GPU footprint.
//! * [`traffic`] — per-parallelism communication volumes reproducing
//!   Table 3 (DP ≈ 5.5 GB AllReduce, PP ≈ 6 MB Send/Recv, TP ≈ 560 MB).
//! * [`iteration`] — one training iteration compiled to an op graph:
//!   forward/backward compute, TP sync on NVLink, PP stage sends, and the
//!   per-rail Multi-AllReduce gradient synchronization whose bursts are
//!   Fig 2's signature.
//! * [`checkpoint`] — the Fig 4 checkpoint-interval economics: save
//!   overhead, rollback loss, and the 20× failure-cost argument of §2.3.
//! * [`cloud`] — the Fig 1 general-cloud traffic generator (hundreds of
//!   thousands of long-lived, low-rate connections, diurnal variation).
//! * [`jobs`] — the Fig 6 production job-size distribution (96.3% of jobs
//!   fit in 1K GPUs; none exceed 3K).
//! * [`inference`] — §8's serving profiles: why the 2×200G frontend NIC
//!   comfortably carries inference next to training.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cloud;
pub mod inference;
pub mod iteration;
pub mod jobs;
pub mod model;
pub mod parallel;
pub mod traffic;

pub use iteration::TrainingJob;
pub use model::ModelSpec;
pub use parallel::ParallelismPlan;
