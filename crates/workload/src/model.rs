//! LLM architecture descriptions and the calibrated compute model.

use hpn_sim::SimDuration;

/// An LLM's architectural constants.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Display name.
    pub name: String,
    /// Parameter count.
    pub params: f64,
    /// Transformer layer count.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Sequence length used in training.
    pub seq_len: u32,
    /// Bytes per gradient element (fp16/bf16 = 2).
    pub grad_bytes: f64,
    /// Bytes per activation element.
    pub act_bytes: f64,
    /// GPU-seconds of compute per training sample (fwd+bwd), the
    /// calibration constant that sets the compute/communication ratio.
    /// Chosen so simulated samples/s lands in the range the paper's
    /// figures show (Fig 15a ≈ 250 samples/s on 2300+ GPUs for the
    /// proprietary GPT-scale model; Fig 16 for LLaMa).
    pub gpu_secs_per_sample: f64,
}

impl ModelSpec {
    /// The GPT-3 175B variant of §7 / §9 (96 layers, hidden 12288,
    /// seq 2048).
    pub fn gpt3_175b() -> Self {
        ModelSpec {
            name: "GPT-3 175B".into(),
            params: 175e9,
            layers: 96,
            hidden: 12288,
            seq_len: 2048,
            grad_bytes: 2.0,
            act_bytes: 2.0,
            gpu_secs_per_sample: 6.4,
        }
    }

    /// LLaMa-7B (32 layers, hidden 4096).
    pub fn llama_7b() -> Self {
        ModelSpec {
            name: "LLaMa-7B".into(),
            params: 6.7e9,
            layers: 32,
            hidden: 4096,
            seq_len: 2048,
            grad_bytes: 2.0,
            act_bytes: 2.0,
            gpu_secs_per_sample: 0.35,
        }
    }

    /// LLaMa-13B (40 layers, hidden 5120).
    pub fn llama_13b() -> Self {
        ModelSpec {
            name: "LLaMa-13B".into(),
            params: 13e9,
            layers: 40,
            hidden: 5120,
            seq_len: 2048,
            grad_bytes: 2.0,
            act_bytes: 2.0,
            gpu_secs_per_sample: 0.65,
        }
    }

    /// Compute time for one iteration on `gpus` GPUs with the given global
    /// batch (perfect compute scaling; network effects are simulated, not
    /// assumed).
    pub fn compute_time(&self, global_batch: usize, gpus: usize) -> SimDuration {
        assert!(gpus > 0, "no GPUs");
        SimDuration::from_secs_f64(self.gpu_secs_per_sample * global_batch as f64 / gpus as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sane() {
        for m in [
            ModelSpec::gpt3_175b(),
            ModelSpec::llama_7b(),
            ModelSpec::llama_13b(),
        ] {
            assert!(m.params > 1e9);
            assert!(m.layers >= 32);
            assert!(m.hidden >= 4096);
            assert!(m.gpu_secs_per_sample > 0.0);
        }
        assert!(ModelSpec::llama_13b().params > ModelSpec::llama_7b().params);
    }

    #[test]
    fn compute_time_scales_inversely_with_gpus() {
        let m = ModelSpec::llama_7b();
        let t1 = m.compute_time(2048, 256);
        let t2 = m.compute_time(2048, 512);
        assert!((t1.as_secs_f64() / t2.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpt3_iteration_compute_in_plausible_range() {
        // 2304 GPUs, batch 2048: several seconds of compute per iteration.
        let m = ModelSpec::gpt3_175b();
        let t = m.compute_time(2048, 2304).as_secs_f64();
        assert!((1.0..30.0).contains(&t), "compute {t}s");
    }
}
