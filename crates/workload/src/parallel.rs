//! Megatron-style parallelism plans.

/// A hybrid TP × PP × DP decomposition (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelismPlan {
    /// Tensor-parallel group size (8 = one host's NVLink domain).
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// Data-parallel replicas.
    pub dp: usize,
}

impl ParallelismPlan {
    /// Create a plan; all factors must be ≥ 1.
    pub fn new(tp: usize, pp: usize, dp: usize) -> Self {
        assert!(tp >= 1 && pp >= 1 && dp >= 1, "degenerate plan");
        ParallelismPlan { tp, pp, dp }
    }

    /// The §7 example: TP=8, PP=8, DP=512 → 32K GPUs.
    pub fn gpt3_32k() -> Self {
        Self::new(8, 8, 512)
    }

    /// Total GPUs the plan occupies.
    pub fn gpus(&self) -> usize {
        self.tp * self.pp * self.dp
    }

    /// Hosts occupied when TP maps onto the 8-GPU NVLink domain.
    pub fn hosts(&self, gpus_per_host: usize) -> usize {
        assert_eq!(
            self.tp, gpus_per_host,
            "plans here pin the TP group to one host's NVLink domain"
        );
        self.pp * self.dp
    }

    /// Host index (within the job's host list, stage-major) of pipeline
    /// stage `s` in DP replica `d`. Stage-major order means consecutive
    /// stages of one replica are adjacent — the layout §7 exploits to push
    /// only PP traffic across pods.
    pub fn host_of(&self, d: usize, s: usize) -> usize {
        assert!(d < self.dp && s < self.pp);
        d * self.pp + s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_accounting() {
        assert_eq!(ParallelismPlan::gpt3_32k().gpus(), 32768);
        assert_eq!(ParallelismPlan::new(8, 2, 4).gpus(), 64);
    }

    #[test]
    fn host_layout_is_stage_major() {
        let p = ParallelismPlan::new(8, 4, 2);
        assert_eq!(p.hosts(8), 8);
        assert_eq!(p.host_of(0, 0), 0);
        assert_eq!(p.host_of(0, 3), 3);
        assert_eq!(p.host_of(1, 0), 4);
    }

    #[test]
    #[should_panic(expected = "NVLink domain")]
    fn tp_must_match_host_size() {
        ParallelismPlan::new(4, 2, 2).hosts(8);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_factor_rejected() {
        ParallelismPlan::new(0, 1, 1);
    }
}
