//! Per-parallelism communication volumes — Table 3.
//!
//! For GPT-3 175B with TP=8, PP=8, DP=512 the paper reports:
//!
//! | parallelism | volume | operation          |
//! |-------------|--------|--------------------|
//! | DP          | 5.5 GB | AllReduce          |
//! | PP          | 6 MB   | Send/Recv          |
//! | TP          | 560 MB | AllReduce/AllGather|
//!
//! These fall out of first principles:
//!
//! * **DP** — each DP rank owns `params / (tp·pp)` parameters; fp16
//!   gradients at 2 B each: `175e9 / 64 × 2 B = 5.47 GB`.
//! * **PP** — a stage boundary carries one microbatch's activation shard:
//!   `seq × hidden × 2 B / tp = 2048 × 12288 × 2 / 8 = 6.29 MB`.
//! * **TP** — per microbatch, every layer AllReduces its activation shard:
//!   `layers × seq × hidden × 2 B / tp = 96 × 6.29 MB = 566 MB`.

use crate::model::ModelSpec;
use crate::parallel::ParallelismPlan;

/// DP gradient AllReduce volume per iteration, in bytes.
pub fn dp_allreduce_bytes(model: &ModelSpec, plan: &ParallelismPlan) -> f64 {
    model.params * model.grad_bytes / (plan.tp * plan.pp) as f64
}

/// PP Send/Recv volume per microbatch per stage boundary per TP rank,
/// in bytes.
pub fn pp_sendrecv_bytes(model: &ModelSpec, plan: &ParallelismPlan) -> f64 {
    model.seq_len as f64 * model.hidden as f64 * model.act_bytes / plan.tp as f64
}

/// TP synchronization volume per microbatch per GPU, in bytes.
pub fn tp_sync_bytes(model: &ModelSpec, plan: &ParallelismPlan) -> f64 {
    model.layers as f64 * pp_sendrecv_bytes(model, plan)
}

/// The whole Table 3 row set for a configuration.
#[derive(Clone, Copy, Debug)]
pub struct Table3 {
    /// DP AllReduce bytes.
    pub dp_bytes: f64,
    /// PP Send/Recv bytes.
    pub pp_bytes: f64,
    /// TP AllReduce/AllGather bytes.
    pub tp_bytes: f64,
}

/// Compute Table 3 for a model and plan.
pub fn table3(model: &ModelSpec, plan: &ParallelismPlan) -> Table3 {
    Table3 {
        dp_bytes: dp_allreduce_bytes(model, plan),
        pp_bytes: pp_sendrecv_bytes(model, plan),
        tp_bytes: tp_sync_bytes(model, plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_matches_table3() {
        let t = table3(&ModelSpec::gpt3_175b(), &ParallelismPlan::gpt3_32k());
        // DP ≈ 5.5 GB.
        assert!(
            (t.dp_bytes - 5.5e9).abs() / 5.5e9 < 0.01,
            "DP {} vs 5.5GB",
            t.dp_bytes
        );
        // PP ≈ 6 MB.
        assert!(
            (t.pp_bytes - 6e6).abs() / 6e6 < 0.06,
            "PP {} vs 6MB",
            t.pp_bytes
        );
        // TP ≈ 560 MB (the formula gives 604 MB; the paper rounds its
        // measurement — within 10% is the right fidelity claim here).
        assert!(
            (t.tp_bytes - 560e6).abs() / 560e6 < 0.10,
            "TP {} vs 560MB",
            t.tp_bytes
        );
    }

    #[test]
    fn ordering_matches_paper_narrative() {
        // §7: "PP generates the lowest traffic", DP the highest.
        let t = table3(&ModelSpec::gpt3_175b(), &ParallelismPlan::gpt3_32k());
        assert!(t.pp_bytes < t.tp_bytes);
        assert!(t.tp_bytes < t.dp_bytes);
    }

    #[test]
    fn dp_volume_shrinks_with_more_model_parallelism() {
        let m = ModelSpec::gpt3_175b();
        let small = dp_allreduce_bytes(&m, &ParallelismPlan::new(8, 8, 4));
        let large = dp_allreduce_bytes(&m, &ParallelismPlan::new(8, 16, 4));
        assert!(large < small, "more PP shards the gradients further");
    }
}
