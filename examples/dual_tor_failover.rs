//! Dual-ToR failover in action (§4, Fig 18): fail a NIC-ToR cable in the
//! middle of training and watch the difference between dual-ToR and
//! single-ToR access.
//!
//! ```sh
//! cargo run --release --example dual_tor_failover
//! ```

use hpn::collectives::CommConfig;
use hpn::core::{placement, IterationOutcome, TrainingSession};
use hpn::routing::HashMode;
use hpn::sim::SimDuration;
use hpn::topology::HpnConfig;
use hpn::transport::ClusterSim;
use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

fn scenario(dual_tor: bool) {
    let mut cfg = HpnConfig::paper();
    cfg.segments_per_pod = 1;
    cfg.hosts_per_segment = 8;
    cfg.backup_hosts_per_segment = 0;
    cfg.aggs_per_plane = 8;
    cfg.cores_per_plane = 8;
    cfg.dual_tor = dual_tor;
    let mut cs = ClusterSim::new(cfg.build(), HashMode::Polarized);

    let rails = cs.fabric.host_params.rails;
    let hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();
    let mut model = ModelSpec::llama_7b();
    model.gpu_secs_per_sample = 0.1;
    let job = TrainingJob::new(model, ParallelismPlan::new(rails, 1, 8), hosts, rails, 256);
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());
    session.min_timeout = SimDuration::from_secs(120);

    println!(
        "== {} access ==",
        if dual_tor { "dual-ToR" } else { "single-ToR" }
    );
    session.run_iterations(&mut cs, 2);
    let baseline = session.records()[1].samples_per_sec;
    println!("  baseline: {baseline:.0} samples/s");

    // Fail host0 rail0's first cable 200ms into the next iteration; repair
    // it 60 seconds later.
    let cable = cs.fabric.hosts[0].nic_up[0][0].unwrap();
    let t = cs.now() + SimDuration::from_millis(200);
    cs.schedule_cable_event(t, cable, false);
    cs.schedule_cable_event(t + SimDuration::from_secs(60), cable, true);

    let during = session.run_iteration(&mut cs);
    match during.outcome {
        IterationOutcome::Completed { duration } => println!(
            "  during failure: {:.0} samples/s ({:+.1}%, iteration took {:.1}s)",
            during.samples_per_sec,
            (during.samples_per_sec / baseline - 1.0) * 100.0,
            duration.as_secs_f64()
        ),
        IterationOutcome::TimedOut => {
            println!("  during failure: iteration TIMED OUT — the job would crash and roll back");
            return;
        }
    }
    let after = session.run_iteration(&mut cs);
    let after = session
        .run_iteration(&mut cs)
        .samples_per_sec
        .max(after.samples_per_sec);
    println!("  after repair: {after:.0} samples/s");
    println!(
        "  transport: {} reroutes, {} stalls\n",
        cs.stats().reroutes,
        cs.stats().stalls
    );
}

fn main() {
    scenario(true);
    scenario(false);
}
