//! RePaC-style disjoint-path enumeration and least-WQE selection
//! (§6.1 + Appendix B).
//!
//! ```sh
//! cargo run --release --example path_selection
//! ```

use hpn::collectives::{graph, CommConfig, Communicator, Runner};
use hpn::routing::repac;
use hpn::routing::HashMode;
use hpn::sim::{SimDuration, SimTime};
use hpn::topology::{HpnConfig, NodeKind};
use hpn::transport::{ClusterSim, PathPolicy};

fn main() {
    let fabric = HpnConfig::medium().build();
    let mut cs = ClusterSim::new(fabric, HashMode::Polarized);

    // 1. EstablishConns: enumerate disjoint paths between two cross-segment
    //    GPUs by inverting the switch hashes.
    let dst = cs.fabric.segment_hosts(1)[0].id;
    let found = repac::find_paths(&cs.router, &cs.fabric, &cs.health, 0, 0, dst, 0, 6, 49152);
    println!(
        "found {} pairwise-disjoint paths after {} candidate evaluations \
         (search space per plane: {} uplinks):",
        found.paths.len(),
        found.candidates_tried,
        repac::path_search_space(&cs.fabric)
    );
    for p in &found.paths {
        let via: Vec<String> = p
            .route
            .links
            .iter()
            .filter_map(|&l| {
                let dst = cs.fabric.net.link(l).dst;
                matches!(cs.fabric.net.kind(dst), NodeKind::Agg { .. })
                    .then(|| cs.fabric.net.kind(dst).label())
            })
            .collect();
        println!(
            "  sport {:>5} port {:?} via {}",
            p.sport,
            p.route.port,
            via.join(",")
        );
    }

    // 2. PathSelection: run two concurrent Multi-AllReduce jobs and compare
    //    the single-path baseline with the deployed least-WQE scheme. A
    //    quarter of the ToR uplinks run degraded to create the asymmetry
    //    congestion-aware selection is designed for.
    for &t in &cs.fabric.tors.clone() {
        for (i, l) in cs.fabric.tor_uplinks(t).into_iter().enumerate() {
            if i % 4 == 0 {
                cs.net.set_link_capacity(l.flow_link(), 100e9);
            }
        }
    }
    let hosts = 16usize;
    let rails = cs.fabric.host_params.rails;
    let ranks: Vec<(u32, usize)> = (0..hosts as u32)
        .flat_map(|h| (0..rails).map(move |r| (h, r)))
        .collect();

    for (label, config) in [
        ("single-path ECMP       ", CommConfig::single_path()),
        (
            "disjoint + round-robin ",
            CommConfig {
                conns_per_pair: 4,
                policy: PathPolicy::RoundRobin,
            },
        ),
        ("disjoint + least-WQE   ", CommConfig::hpn_default()),
    ] {
        let mut cs2 = ClusterSim::new((*cs.fabric).clone(), HashMode::Polarized);
        for &t in &cs2.fabric.tors.clone() {
            for (i, l) in cs2.fabric.tor_uplinks(t).into_iter().enumerate() {
                if i % 4 == 0 {
                    cs2.net.set_link_capacity(l.flow_link(), 100e9);
                }
            }
        }
        let mut runner = Runner::new();
        let mut jobs = Vec::new();
        for j in 0..2u16 {
            let comm = Communicator::new(ranks.clone(), config, 40000 + j * 1117);
            let c = runner.add_comm(comm);
            jobs.push(runner.add_job(graph::multi_allreduce(hosts, rails, 8e9, 2), c));
        }
        runner.run(&mut cs2, SimTime::ZERO + SimDuration::from_secs(600));
        let worst = jobs
            .iter()
            .map(|&j| runner.job_duration(j).expect("finished").as_secs_f64())
            .fold(0.0, f64::max);
        println!("{label}: slowest of 2 concurrent AllReduce = {worst:.3}s");
    }
}
