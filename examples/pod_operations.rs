//! A day in the life of a pod: continuous training under the paper's
//! production fault rates (§2.3), with dual-ToR failover doing its job.
//!
//! ```sh
//! cargo run --release --example pod_operations
//! ```

use hpn::collectives::CommConfig;
use hpn::core::{placement, IterationOutcome, TrainingSession};
use hpn::faults::{access_links, plan, FaultKind, FaultRates};
use hpn::routing::HashMode;
use hpn::sim::{SimDuration, SimTime};
use hpn::topology::HpnConfig;
use hpn::transport::ClusterSim;
use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

fn main() {
    let mut cfg = HpnConfig::paper();
    cfg.segments_per_pod = 2;
    cfg.hosts_per_segment = 8;
    cfg.backup_hosts_per_segment = 1;
    cfg.aggs_per_plane = 8;
    cfg.cores_per_plane = 8;
    let mut cs = ClusterSim::new(cfg.build(), HashMode::Polarized);

    // Crank the fault rates so a single simulated hour sees real action
    // (at the true 0.057%/month rate a small testbed would stay quiet).
    let mut rates = FaultRates::paper();
    rates.link_fail_per_month *= 2000.0;
    rates.flaps_per_link_day *= 20.0;
    rates.link_repair = SimDuration::from_secs(120);
    rates.tor_crash_per_month = 0.0;
    let horizon = SimDuration::from_secs(3600);
    let schedule = plan(&cs.fabric, &rates, horizon, 42);
    println!(
        "operating a {}-GPU pod for 1h with {} scheduled faults over {} access links",
        cs.fabric.active_gpu_count(),
        schedule.len(),
        access_links(&cs.fabric).len()
    );

    // Pre-arm every fault as a timer so training runs uninterrupted.
    for ev in &schedule {
        if let FaultKind::LinkFailure { link, repair_after } = ev.kind {
            cs.schedule_cable_event(ev.at, link, false);
            cs.schedule_cable_event(ev.at + repair_after, link, true);
        }
        if let FaultKind::LinkFlap { link, duration } = ev.kind {
            cs.schedule_cable_event(ev.at, link, false);
            cs.schedule_cable_event(ev.at + duration, link, true);
        }
    }

    let rails = cs.fabric.host_params.rails;
    let hosts = placement::place_segment_first(&cs.fabric, 16).unwrap();
    let mut model = ModelSpec::llama_7b();
    model.gpu_secs_per_sample = 1.0;
    let job = TrainingJob::new(model, ParallelismPlan::new(rails, 2, 8), hosts, rails, 2048);
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());

    let mut completed = 0usize;
    let mut degraded = 0usize;
    let mut baseline = 0.0f64;
    while cs.now() < SimTime::ZERO + horizon {
        let rec = session.run_iteration(&mut cs);
        match rec.outcome {
            IterationOutcome::Completed { .. } => {
                completed += 1;
                if baseline == 0.0 {
                    baseline = rec.samples_per_sec;
                }
                if rec.samples_per_sec < baseline * 0.95 {
                    degraded += 1;
                }
            }
            IterationOutcome::TimedOut => {
                println!("iteration {} TIMED OUT (would crash the job)", rec.index);
                break;
            }
        }
    }
    println!(
        "completed {completed} iterations ({degraded} visibly degraded by faults), \
         0 crashes — transport rerouted {} messages, {} stalls",
        cs.stats().reroutes,
        cs.stats().stalls
    );
    println!(
        "mean throughput {:.0} samples/s (first iteration {:.0})",
        session.mean_throughput(1),
        baseline
    );
}
