//! Quickstart: build an HPN fabric, inspect it, and time an AllReduce.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpn::collectives::{bw, graph, CommConfig, Communicator, Runner};
use hpn::routing::HashMode;
use hpn::sim::{SimDuration, SimTime};
use hpn::topology::HpnConfig;
use hpn::transport::ClusterSim;

fn main() {
    // 1. Describe the fabric. `medium()` is a structurally faithful
    //    scale-down of the paper's pod: rail-optimized dual-ToR segments,
    //    dual-plane tier-2. `paper()` builds the full 15K-GPU pod.
    let cfg = HpnConfig::medium();
    let fabric = cfg.build();
    println!(
        "built an HPN fabric: {} active GPUs in {} segments \
         ({} ToRs, {} Aggs, {} Cores, {} directed links)",
        fabric.active_gpu_count(),
        fabric.segments,
        fabric.tors.len(),
        fabric.aggs.len(),
        fabric.cores.len(),
        fabric.net.link_count(),
    );
    println!(
        "tier-1 oversubscription {:.3}:1, Agg–Core {:.0}:1",
        cfg.tier1_oversubscription(),
        cfg.agg_core_oversubscription()
    );

    // 2. Stand up the cluster runtime: fluid network + router + BGP view.
    let mut cs = ClusterSim::new(fabric, HashMode::Polarized);

    // 3. Run a 1GB hierarchical AllReduce over 16 hosts (128 GPUs) spread
    //    across two segments, using the paper's disjoint-path + least-WQE
    //    connection scheme.
    let hosts = 16usize;
    let rails = cs.fabric.host_params.rails;
    let host_ids: Vec<u32> = (0..2)
        .flat_map(|seg| {
            cs.fabric
                .segment_hosts(seg)
                .iter()
                .take(hosts / 2)
                .map(|h| h.id)
                .collect::<Vec<_>>()
        })
        .collect();
    let ranks: Vec<(u32, usize)> = host_ids
        .iter()
        .flat_map(|&h| (0..rails).map(move |r| (h, r)))
        .collect();
    let n_ranks = ranks.len();
    let size_bits = 8e9; // 1 GB

    let mut runner = Runner::new();
    let comm = runner.add_comm(Communicator::new(ranks, CommConfig::hpn_default(), 49152));
    let job = runner.add_job(
        graph::hierarchical_allreduce(hosts, rails, size_bits, true, 2),
        comm,
    );
    let finished = runner.run_job(&mut cs, job, SimTime::ZERO + SimDuration::from_secs(60));
    assert!(finished, "collective should finish well within a minute");

    let dur = runner.job_duration(job).expect("job finished");
    println!(
        "AllReduce(1GB) over {n_ranks} GPUs: {:.2} ms, busbw {:.0} GB/s",
        dur.as_secs_f64() * 1e3,
        bw::allreduce_busbw(size_bits, n_ranks, dur) / 1e9
    );
    println!(
        "transport: {} messages completed, {} rerouted, {} stalled",
        cs.stats().completed,
        cs.stats().reroutes,
        cs.stats().stalls
    );
}
