//! Train a GPT-scale model on HPN vs the DCN+ baseline and compare
//! throughput — a miniature of the paper's §9.1 production story.
//!
//! ```sh
//! cargo run --release --example train_llm
//! ```

use hpn::collectives::CommConfig;
use hpn::core::{placement, TrainingSession};
use hpn::routing::HashMode;
use hpn::topology::{DcnPlusConfig, Fabric, HpnConfig};
use hpn::transport::ClusterSim;
use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

fn train(name: &str, fabric: Fabric, hosts: usize) -> f64 {
    let mut cs = ClusterSim::new(fabric, HashMode::Polarized);
    let rails = cs.fabric.host_params.rails;
    let pp = 4;
    let plan = ParallelismPlan::new(rails, pp, hosts / pp);
    let host_ids = placement::place_segment_first(&cs.fabric, hosts).expect("enough hosts");
    let spanned = placement::segments_spanned(&cs.fabric, &host_ids);
    let job = TrainingJob::new(ModelSpec::gpt3_175b(), plan, host_ids, rails, 512);
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());
    session.run_iterations(&mut cs, 4);
    let sps = session.mean_throughput(1);
    println!(
        "{name:>6}: {} GPUs over {spanned} segments → {sps:.1} samples/s \
         (iteration {:.2}s)",
        hosts * rails,
        512.0 / sps,
    );
    sps
}

fn main() {
    let hosts = 48usize;
    println!(
        "training a GPT-3-175B variant (TP=8, PP=4, DP={}):\n",
        hosts / 4
    );

    // HPN: 24-host segments here, so the job spans 2 (the paper's 288-host
    // job spans 3 segments of 128).
    let mut hpn_cfg = HpnConfig::paper();
    hpn_cfg.segments_per_pod = 3;
    hpn_cfg.hosts_per_segment = 24;
    hpn_cfg.backup_hosts_per_segment = 0;
    hpn_cfg.aggs_per_plane = 8;
    hpn_cfg.cores_per_plane = 8;
    let hpn = train("HPN", hpn_cfg.build(), hosts);

    // DCN+: 16-host segments, 3-tier Clos — the job spans 3 segments.
    let mut dcn_cfg = DcnPlusConfig::paper();
    dcn_cfg.pods = 1;
    dcn_cfg.tor_agg_parallel = 4;
    dcn_cfg.agg_core_uplinks = 8;
    dcn_cfg.cores = 16;
    let dcn = train("DCN+", dcn_cfg.build(), hosts);

    println!(
        "\nHPN end-to-end gain: {:+.1}% (the paper reports +14.9% at 2300+ GPUs)",
        (hpn / dcn - 1.0) * 100.0
    );
}
