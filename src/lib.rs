//! # hpn — reproduction of *Alibaba HPN* (SIGCOMM 2024)
//!
//! Umbrella crate re-exporting the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`sim`] — discrete-event engine and fluid flow network,
//! * [`topology`] — HPN, DCN+, fat-tree, SuperPod and frontend fabrics,
//! * [`routing`] — ECMP hashing, BGP host routes, dual-ToR control planes,
//! * [`transport`] — RDMA-style connections over bonded dual-port NICs,
//! * [`collectives`] — AllReduce/AllGather/Multi-AllReduce with the paper's
//!   disjoint-path + least-WQE path selection,
//! * [`workload`] — LLM training jobs (TP/PP/DP), checkpoints, cloud traffic,
//! * [`faults`] — link/ToR failure and flapping injection,
//! * [`power`] — 51.2T switch-chip power and cooling models,
//! * [`core`] — the assembled HPN system: fabric + routing + collectives +
//!   training runner,
//! * [`telemetry`] — event recorders, per-thread recorder scopes, segment
//!   merge and deterministic run manifests.
//!
//! See `examples/quickstart.rs` for a five-minute tour, or in brief:
//!
//! ```
//! use hpn::topology::HpnConfig;
//! use hpn::transport::{ClusterSim, PathPolicy};
//! use hpn::routing::HashMode;
//! use hpn::sim::SimTime;
//!
//! // A structurally faithful scale-down of the paper's 15K-GPU pod.
//! let fabric = HpnConfig::tiny().build();
//! let mut cluster = ClusterSim::new(fabric, HashMode::Polarized);
//!
//! // Open disjoint-path connections between two GPUs and send 1GB.
//! let group = cluster.establish_group((0, 0), (1, 0), 2, PathPolicy::LeastWqe, 49152);
//! cluster.send_group(group, 8e9, 0);
//!
//! struct Done(bool);
//! impl hpn::transport::ClusterApp for Done {
//!     fn on_message_complete(&mut self, _: &mut ClusterSim, _: hpn::transport::MessageDone) {
//!         self.0 = true;
//!     }
//! }
//! let mut app = Done(false);
//! cluster.run(&mut app, SimTime::from_secs(10));
//! assert!(app.0, "the gigabyte arrived");
//! ```

#![warn(missing_docs)]

pub use hpn_collectives as collectives;
pub use hpn_core as core;
pub use hpn_faults as faults;
pub use hpn_power as power;
pub use hpn_routing as routing;
pub use hpn_sim as sim;
pub use hpn_telemetry as telemetry;
pub use hpn_topology as topology;
pub use hpn_transport as transport;
pub use hpn_workload as workload;
