//! The parallel runner's determinism contract, checked end to end:
//! `--jobs N` may only change wall-clock, never a byte of output.
//!
//! Two layers:
//!
//! * A fast subset (always on) over the cheap stochastic figures — every
//!   file `write_sweep_outputs` produces (figures, JSONL telemetry,
//!   manifests) is byte-compared between a sequential and two parallel
//!   runs.
//! * The full gate (fig13–fig19) at `jobs=1` vs `jobs=8` vs `jobs=8`,
//!   `#[ignore]`d here because a debug-build gate takes minutes on one
//!   core; CI's `determinism` job runs it in release with
//!   `--include-ignored`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use hpn::telemetry::hex_digest;
use hpn_bench::gate::{run_gate, FigureStatus, GATE_FIGURES};
use hpn_bench::runner::{run_plan, variance_json, write_sweep_outputs, RunPlan};
use hpn_bench::Scale;

mod parallel_allocator {
    //! The parallel allocator's worker count may only change wall-clock,
    //! never a byte: a session using [`AllocatorKind::Parallel`] must
    //! produce bitwise-identical telemetry and iteration timings whether
    //! the component pool runs 1 worker or 8.

    use hpn::collectives::CommConfig;
    use hpn::core::{placement, TrainingSession};
    use hpn::routing::HashMode;
    use hpn::sim::AllocatorKind;
    use hpn::telemetry::{JsonlRecorder, SharedBuf, SharedRecorder, SimCtx};
    use hpn::topology::HpnConfig;
    use hpn::transport::ClusterSim;
    use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

    fn session_fingerprint(jobs: &str) -> (Vec<u64>, String) {
        // `HPN_ALLOC_JOBS` pins the pool size the parallel allocator
        // spawns. Nothing else in this test binary reads the variable
        // (figure runs stay on the dense default), so setting it here is
        // safe under parallel test threads.
        std::env::set_var("HPN_ALLOC_JOBS", jobs);
        let buf = SharedBuf::new();
        let ctx = SimCtx::new()
            .with_recorder(SharedRecorder::new(Box::new(JsonlRecorder::new(
                buf.clone(),
            ))))
            .with_allocator(AllocatorKind::Parallel);
        let mut cs = ClusterSim::with_ctx(HpnConfig::medium().build(), HashMode::Polarized, &ctx);
        let rails = cs.fabric.host_params.rails;
        let hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();
        let job = TrainingJob::new(
            ModelSpec::llama_7b(),
            ParallelismPlan::new(rails, 2, 4),
            hosts,
            rails,
            256,
        );
        let mut session = TrainingSession::new(job, CommConfig::hpn_default());
        session.run_iterations(&mut cs, 3);
        std::env::remove_var("HPN_ALLOC_JOBS");
        let nanos = session.records().iter().map(|r| r.end.as_nanos()).collect();
        (nanos, buf.text())
    }

    #[test]
    fn parallel_allocator_session_is_byte_identical_at_jobs_1_and_8() {
        let (nanos_1, telemetry_1) = session_fingerprint("1");
        let (nanos_8, telemetry_8) = session_fingerprint("8");
        assert_eq!(
            nanos_1, nanos_8,
            "iteration timings drifted with the allocator worker count"
        );
        assert_eq!(
            telemetry_1, telemetry_8,
            "telemetry stream is not byte-identical between 1 and 8 workers"
        );
        assert!(
            telemetry_1.contains("\"ev\":\"rate_recompute\""),
            "session never exercised the rate allocator"
        );
    }
}

mod surrogate_allocator {
    //! The memoized surrogate allocator's determinism contract: a
    //! surrogate session is byte-reproducible run-to-run, indifferent to
    //! the component pool's worker count (it never uses the pool), and at
    //! validation cadence 1 its iteration timings match the incremental
    //! reference exactly.

    use hpn::collectives::CommConfig;
    use hpn::core::{placement, TrainingSession};
    use hpn::routing::HashMode;
    use hpn::sim::AllocatorKind;
    use hpn::telemetry::{JsonlRecorder, SharedBuf, SharedRecorder, SimCtx};
    use hpn::topology::HpnConfig;
    use hpn::transport::ClusterSim;
    use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

    /// Run one medium-fabric training session under an explicit context —
    /// no `HPN_ALLOCATOR` environment writes, so this is safe under
    /// parallel test threads.
    fn session_fingerprint(kind: AllocatorKind, validate_every: u32) -> (Vec<u64>, String) {
        let buf = SharedBuf::new();
        let ctx = SimCtx::new()
            .with_recorder(SharedRecorder::new(Box::new(JsonlRecorder::new(
                buf.clone(),
            ))))
            .with_allocator(kind)
            .with_validate_every(validate_every);
        let mut cs = ClusterSim::with_ctx(HpnConfig::medium().build(), HashMode::Polarized, &ctx);
        let rails = cs.fabric.host_params.rails;
        let hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();
        let job = TrainingJob::new(
            ModelSpec::llama_7b(),
            ParallelismPlan::new(rails, 2, 4),
            hosts,
            rails,
            256,
        );
        let mut session = TrainingSession::new(job, CommConfig::hpn_default());
        session.run_iterations(&mut cs, 3);
        let nanos = session.records().iter().map(|r| r.end.as_nanos()).collect();
        (nanos, buf.text())
    }

    #[test]
    fn surrogate_session_is_byte_reproducible() {
        let (nanos_a, telemetry_a) = session_fingerprint(AllocatorKind::Surrogate, 64);
        let (nanos_b, telemetry_b) = session_fingerprint(AllocatorKind::Surrogate, 64);
        assert_eq!(nanos_a, nanos_b, "surrogate iteration timings drifted");
        assert_eq!(
            telemetry_a, telemetry_b,
            "surrogate telemetry stream is not byte-identical across runs"
        );
        assert!(
            telemetry_a.contains("\"ev\":\"rate_recompute\""),
            "session never exercised the rate allocator"
        );
    }

    #[test]
    fn surrogate_at_cadence_one_times_like_incremental() {
        // At validate_every=1 every prediction is re-solved exactly, so
        // flow rates — and therefore completion times and iteration
        // timings — must match the incremental reference bit for bit.
        // (The telemetry text differs: surrogate sessions emit extra
        // surrogate_miss events.)
        let (nanos_incr, _) = session_fingerprint(AllocatorKind::Incremental, 0);
        let (nanos_surr, telemetry_surr) = session_fingerprint(AllocatorKind::Surrogate, 1);
        assert_eq!(
            nanos_incr, nanos_surr,
            "surrogate at cadence 1 drifted from the incremental reference"
        );
        assert!(
            telemetry_surr.contains("\"ev\":\"surrogate_miss\""),
            "surrogate session emitted no cache telemetry"
        );
    }
}

/// Fresh per-test scratch dir under the target tree.
fn tmp_dir(name: &str) -> PathBuf {
    let d = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if d.exists() {
        std::fs::remove_dir_all(&d).expect("clear scratch dir");
    }
    d
}

/// Every file in `dir`, name → content bytes.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf-8 file name");
        out.insert(name, std::fs::read(entry.path()).expect("read output file"));
    }
    out
}

/// Assert two output trees are bitwise equal, reporting the first
/// offending file by name.
fn assert_trees_equal(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>, what: &str) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: file sets differ"
    );
    for (name, bytes) in a {
        assert!(
            bytes == &b[name],
            "{what}: {name} is not byte-identical across runs"
        );
    }
}

#[test]
fn quick_subset_parallel_matches_sequential_byte_for_byte() {
    // Cheap, RNG-bearing figures — runs in seconds even in debug builds.
    let figures = ["fig01", "fig06", "fig19"];
    let plan = RunPlan::sweep(&figures, Scale::Quick, &[11, 12]);

    let mut trees = Vec::new();
    let mut reports = Vec::new();
    for (label, jobs) in [("jobs1", 1usize), ("jobs4-a", 4), ("jobs4-b", 4)] {
        let dir = tmp_dir(&format!("determinism-subset-{label}"));
        let results = run_plan(&plan, jobs);
        let manifests = write_sweep_outputs(&plan, &results, Some(&dir)).expect("write outputs");
        assert_eq!(manifests.len(), 2, "one manifest per sweep seed");
        trees.push(dir_bytes(&dir));
        reports.push(variance_json(&plan, &results));
    }

    // Sequential vs parallel, and parallel vs a second parallel run.
    assert_trees_equal(&trees[0], &trees[1], "jobs=1 vs jobs=4");
    assert_trees_equal(&trees[1], &trees[2], "jobs=4 vs jobs=4 (rerun)");
    assert_eq!(reports[0], reports[1], "variance report drifted with jobs");
    assert_eq!(
        reports[1], reports[2],
        "variance report unstable across runs"
    );
}

#[test]
#[ignore = "full 7-figure gate × 3 runs: minutes in debug — CI's determinism job runs it in release with --include-ignored"]
fn full_gate_is_byte_identical_at_jobs_1_and_8() {
    let ids = GATE_FIGURES;
    let mut trees = Vec::new();
    let mut manifest_shas = Vec::new();
    for (label, jobs) in [("jobs1", 1usize), ("jobs8-a", 8), ("jobs8-b", 8)] {
        let dir = tmp_dir(&format!("determinism-gate-{label}"));
        let outcome = run_gate(&ids, Scale::Quick, false, Some(&dir), jobs).expect("gate run");
        assert!(!outcome.updated);
        // Byte-identity alone is not enough — every run must also match the
        // *checked-in* goldens, so parallelism can't hide a joint drift.
        for (id, _, status) in &outcome.figures {
            assert_eq!(
                *status,
                FigureStatus::Match,
                "{id} drifted from tests/golden/figure_hashes.json at {label}"
            );
        }
        manifest_shas.push(hex_digest(outcome.manifest.to_json().as_bytes()));
        trees.push(dir_bytes(&dir));
    }

    assert_eq!(
        manifest_shas[0], manifest_shas[1],
        "manifest SHA-256 differs between jobs=1 and jobs=8"
    );
    assert_eq!(
        manifest_shas[1], manifest_shas[2],
        "manifest SHA-256 differs between two jobs=8 runs"
    );
    assert_trees_equal(&trees[0], &trees[1], "gate jobs=1 vs jobs=8");
    assert_trees_equal(&trees[1], &trees[2], "gate jobs=8 vs jobs=8 (rerun)");
}
