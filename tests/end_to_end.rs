//! Cross-crate integration tests: fabric → routing → transport →
//! collectives → workload, exercised together the way the experiment
//! harness uses them.
//!
//! Telemetry is passed explicitly: a test that wants to observe events
//! builds a [`hpn::telemetry::SimCtx`] carrying its own
//! [`hpn::telemetry::EventLog`] (see [`logging_ctx`]) and hands it to
//! [`ClusterSim::with_ctx`]. There is no ambient recorder to isolate
//! from, so the suite is safe under `cargo test`'s default parallelism —
//! no `--test-threads=1` required.

use hpn::collectives::{bw, graph, CommConfig, Communicator, Runner};
use hpn::core::{placement, IterationOutcome, TrainingSession};
use hpn::routing::{repac, HashMode};
use hpn::sim::{SimDuration, SimTime};
use hpn::telemetry::SimCtx;
use hpn::topology::{DcnPlusConfig, HpnConfig};
use hpn::transport::ClusterSim;
use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

fn hpn_cluster() -> ClusterSim {
    ClusterSim::new(HpnConfig::medium().build(), HashMode::Polarized)
}

/// A context recording into this test's own [`hpn::telemetry::EventLog`].
/// Simulators built from the context record there and nowhere else —
/// concurrent tests cannot share recorder state because nothing is
/// thread- or process-global.
fn logging_ctx() -> (hpn::telemetry::EventLog, SimCtx) {
    let log = hpn::telemetry::EventLog::new();
    let ctx =
        SimCtx::new().with_recorder(hpn::telemetry::SharedRecorder::new(Box::new(log.clone())));
    (log, ctx)
}

#[test]
fn allreduce_on_hpn_reaches_sane_busbw() {
    let (log, ctx) = logging_ctx();
    let mut cs = ClusterSim::with_ctx(HpnConfig::medium().build(), HashMode::Polarized, &ctx);
    let hosts = 8usize;
    let rails = cs.fabric.host_params.rails;
    let ranks: Vec<(u32, usize)> = (0..hosts as u32)
        .flat_map(|h| (0..rails).map(move |r| (h, r)))
        .collect();
    let n = ranks.len();
    let size = 8e9; // 1 GB
    let mut runner = Runner::new();
    let comm = runner.add_comm(Communicator::new(ranks, CommConfig::hpn_default(), 49152));
    let job = runner.add_job(
        graph::hierarchical_allreduce(hosts, rails, size, true, 2),
        comm,
    );
    assert!(runner.run_job(&mut cs, job, SimTime::from_secs(60)));
    let busbw = bw::allreduce_busbw(size, n, runner.job_duration(job).unwrap()) / 1e9;
    // Bounded by NVLink/NIC physics: tens to a few hundred GB/s.
    assert!(
        (20.0..=500.0).contains(&busbw),
        "busbw {busbw} GB/s out of physical range"
    );
    // The collective ran under *this* test's recorder, nobody else's.
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e, hpn::telemetry::Event::FlowAdd { .. })),
        "scoped recorder observed the collective's flows"
    );
}

#[test]
fn training_iterations_are_deterministic_across_runs() {
    let run = || {
        // Fresh recording context per run: telemetry is an observer, so
        // the two runs stay nanosecond-identical with recording enabled.
        let (_log, ctx) = logging_ctx();
        let mut cs = ClusterSim::with_ctx(HpnConfig::medium().build(), HashMode::Polarized, &ctx);
        let rails = cs.fabric.host_params.rails;
        let hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();
        let job = TrainingJob::new(
            ModelSpec::llama_7b(),
            ParallelismPlan::new(rails, 2, 4),
            hosts,
            rails,
            256,
        );
        let mut session = TrainingSession::new(job, CommConfig::hpn_default());
        session.run_iterations(&mut cs, 3);
        session
            .records()
            .iter()
            .map(|r| r.end.as_nanos())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed, same fabric, same nanoseconds");
}

#[test]
fn hpn_beats_dcn_on_cross_segment_multiallreduce() {
    let time_on = |cs: &mut ClusterSim| {
        let hosts = 24usize;
        let rails = cs.fabric.host_params.rails;
        let host_ids = placement::place_segment_first(&cs.fabric, hosts).unwrap();
        let ranks: Vec<(u32, usize)> = host_ids
            .iter()
            .flat_map(|&h| (0..rails).map(move |r| (h, r)))
            .collect();
        let mut runner = Runner::new();
        let comm = runner.add_comm(Communicator::new(ranks, CommConfig::hpn_default(), 49152));
        let job = runner.add_job(graph::multi_allreduce(hosts, rails, 8e9, 2), comm);
        let deadline = cs.now() + SimDuration::from_secs(600);
        assert!(runner.run_job(cs, job, deadline));
        runner.job_duration(job).unwrap().as_secs_f64()
    };
    let mut hpn = ClusterSim::new(
        {
            let mut c = HpnConfig::medium();
            c.hosts_per_segment = 12;
            c.build()
        },
        HashMode::Polarized,
    );
    let mut dcn = ClusterSim::new(
        {
            let mut c = DcnPlusConfig::paper();
            c.pods = 1;
            c.tor_agg_parallel = 4;
            c.agg_core_uplinks = 8;
            c.cores = 16;
            c.build()
        },
        HashMode::Polarized,
    );
    let t_hpn = time_on(&mut hpn);
    let t_dcn = time_on(&mut dcn);
    assert!(
        t_hpn <= t_dcn,
        "HPN ({t_hpn}s) should not lose to DCN+ ({t_dcn}s) on network-heavy collectives"
    );
}

#[test]
fn repac_paths_survive_failures_and_training_continues() {
    let mut cs = hpn_cluster();
    let rails = cs.fabric.host_params.rails;
    let hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();
    let job = TrainingJob::new(
        ModelSpec::llama_7b(),
        ParallelismPlan::new(rails, 1, 8),
        hosts,
        rails,
        256,
    );
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());
    session.run_iterations(&mut cs, 2);

    // Fail three different access cables at once.
    for h in 0..3 {
        let cable = cs.fabric.hosts[h].nic_up[0][0].unwrap();
        cs.fail_cable(cable);
    }
    let rec = session.run_iteration(&mut cs);
    assert!(
        matches!(rec.outcome, IterationOutcome::Completed { .. }),
        "dual-ToR training survives three concurrent link failures"
    );
    assert!(rec.samples_per_sec > 0.0);
}

#[test]
fn find_paths_is_consistent_with_cluster_routing() {
    let cs = hpn_cluster();
    let dst = cs.fabric.segment_hosts(1)[0].id;
    let res = repac::find_paths(&cs.router, &cs.fabric, &cs.health, 0, 0, dst, 0, 8, 49152);
    assert!(res.paths.len() >= 4);
    for p in &res.paths {
        // Every enumerated path must be re-derivable from the router with
        // the same sport and port — RePaC's core premise.
        let again = cs
            .router
            .route(
                &cs.fabric,
                &cs.health,
                &hpn::routing::RouteRequest {
                    src_host: 0,
                    src_rail: 0,
                    dst_host: dst,
                    dst_rail: 0,
                    sport: p.sport,
                    port: p.route.port,
                },
            )
            .expect("path still routable");
        assert_eq!(again.links, p.route.links, "hash inversion is exact");
    }
}

#[test]
fn workload_traffic_volumes_survive_composition() {
    // The iteration graph's network bytes must equal Table-3 composition
    // even after placement on a real fabric.
    let cs = hpn_cluster();
    let rails = cs.fabric.host_params.rails;
    let hosts = placement::place_segment_first(&cs.fabric, 16).unwrap();
    let plan = ParallelismPlan::new(rails, 4, 4);
    let job = TrainingJob::new(ModelSpec::gpt3_175b(), plan, hosts, rails, 512);
    let g = job.iteration_graph();
    let ranks = job.ranks();
    let (net, local) = g.traffic_split(|a, b| ranks[a as usize].0 == ranks[b as usize].0);
    assert!(net > 0.0 && local > 0.0);
    let t3 = hpn::workload::traffic::table3(&job.model, &job.plan);
    let dp_total = (job.plan.pp * rails * job.plan.dp) as f64
        * 2.0
        * t3.dp_bytes
        * 8.0
        * (job.plan.dp as f64 - 1.0)
        / job.plan.dp as f64;
    assert!(net >= dp_total * 0.99, "DP volume must be present in full");
}

#[test]
fn paper_scale_pod_builds_and_routes() {
    // The full 15,360-GPU pod: build it, check the inventory, and route
    // across it. (Build only — simulating it is the harness's job.)
    let fabric = HpnConfig::paper().build();
    assert_eq!(fabric.active_gpu_count(), 15_360);
    assert_eq!(fabric.tors.len(), 15 * 8 * 2);
    assert_eq!(fabric.aggs.len(), 2 * 60);
    let router = hpn::routing::Router::new(&fabric, HashMode::Polarized);
    let health = hpn::routing::LinkHealth::new(fabric.net.link_count());
    let dst = fabric.segment_hosts(14)[0].id;
    let route = router
        .route(
            &fabric,
            &health,
            &hpn::routing::RouteRequest {
                src_host: 0,
                src_rail: 3,
                dst_host: dst,
                dst_rail: 3,
                sport: 50_000,
                port: None,
            },
        )
        .expect("cross-pod-width route");
    // gpu→nic→tor→agg→tor→nic→gpu.
    assert_eq!(route.links.len(), 6);
}
