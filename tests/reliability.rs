//! Reliability integration: stochastic fault injection driving the full
//! stack (faults → transport failover → collectives → training).
//!
//! Telemetry is passed explicitly: a test that wants to observe events
//! builds a [`hpn::telemetry::SimCtx`] carrying its own
//! [`hpn::telemetry::EventLog`] and hands it to [`ClusterSim::with_ctx`].
//! There is no ambient recorder, so the suite runs under `cargo test`'s
//! default parallelism without cross-test interference.

use hpn::collectives::CommConfig;
use hpn::core::{placement, IterationOutcome, TrainingSession};
use hpn::faults::{access_links, plan, FaultKind, FaultRates};
use hpn::routing::HashMode;
use hpn::sim::{SimDuration, SimTime};
use hpn::topology::{wiring, HpnConfig};
use hpn::transport::ClusterSim;
use hpn::workload::{ModelSpec, ParallelismPlan, TrainingJob};

/// A context recording into this test's own [`hpn::telemetry::EventLog`].
/// Clusters built with it record there and nowhere else; no state is
/// shared between tests because nothing is thread- or process-global.
fn logging_ctx() -> (hpn::telemetry::EventLog, hpn::telemetry::SimCtx) {
    let log = hpn::telemetry::EventLog::new();
    let ctx = hpn::telemetry::SimCtx::new()
        .with_recorder(hpn::telemetry::SharedRecorder::new(Box::new(log.clone())));
    (log, ctx)
}

fn small_fabric() -> hpn::topology::Fabric {
    let mut cfg = HpnConfig::paper();
    cfg.segments_per_pod = 2;
    cfg.hosts_per_segment = 8;
    cfg.backup_hosts_per_segment = 1;
    cfg.aggs_per_plane = 8;
    cfg.cores_per_plane = 8;
    cfg.build()
}

fn small_cluster() -> ClusterSim {
    ClusterSim::new(small_fabric(), HashMode::Polarized)
}

#[test]
fn training_survives_an_accelerated_month_of_faults() {
    let (log, ctx) = logging_ctx();
    let mut cs = ClusterSim::with_ctx(small_fabric(), HashMode::Polarized, &ctx);
    // Accelerate the production rates so a few simulated minutes see many
    // failures; repairs are quick so redundancy windows overlap.
    let mut rates = FaultRates::paper();
    rates.link_fail_per_month *= 50_000.0;
    rates.flaps_per_link_day *= 200.0;
    rates.link_repair = SimDuration::from_secs(20);
    rates.tor_crash_per_month = 0.0;
    let horizon = SimDuration::from_secs(300);
    let schedule = plan(&cs.fabric, &rates, horizon, 7);
    assert!(
        schedule.len() > 20,
        "the accelerated schedule should be busy, got {}",
        schedule.len()
    );
    for ev in &schedule {
        match ev.kind {
            FaultKind::LinkFailure { link, repair_after } => {
                cs.schedule_cable_event(ev.at, link, false);
                cs.schedule_cable_event(ev.at + repair_after, link, true);
            }
            FaultKind::LinkFlap { link, duration } => {
                cs.schedule_cable_event(ev.at, link, false);
                cs.schedule_cable_event(ev.at + duration, link, true);
            }
            FaultKind::TorCrash { .. } => {}
        }
    }

    let rails = cs.fabric.host_params.rails;
    let hosts = placement::place_segment_first(&cs.fabric, 16).unwrap();
    let mut model = ModelSpec::llama_7b();
    model.gpu_secs_per_sample = 0.5;
    let job = TrainingJob::new(model, ParallelismPlan::new(rails, 2, 8), hosts, rails, 1024);
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());

    let mut completed = 0;
    while cs.now() < SimTime::ZERO + horizon {
        let rec = session.run_iteration(&mut cs);
        assert!(
            matches!(rec.outcome, IterationOutcome::Completed { .. }),
            "dual-ToR training must not crash under single-link faults (iteration {})",
            rec.index
        );
        completed += 1;
    }
    assert!(
        completed >= 10,
        "made real progress: {completed} iterations"
    );
    // The fault storm actually exercised failover paths.
    assert!(
        cs.stats().reroutes > 0 || cs.stats().stalls == 0,
        "stats: {:?}",
        cs.stats()
    );
    // The scoped recorder (not some shared fixture) observed this test's
    // simulation, link flaps included.
    assert!(!log.is_empty(), "scoped recorder saw the simulation");
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, hpn::telemetry::Event::LinkState { up: false, .. })));
}

#[test]
fn fault_schedule_covers_all_access_links_eventually() {
    let cs = small_cluster();
    let mut rates = FaultRates::paper();
    rates.link_fail_per_month = 0.9; // near-certain monthly failure
    rates.flaps_per_link_day = 0.0;
    rates.tor_crash_per_month = 0.0;
    let horizon = SimDuration::from_secs(10 * 30 * 24 * 3600);
    let schedule = plan(&cs.fabric, &rates, horizon, 3);
    let mut hit: std::collections::BTreeSet<_> = Default::default();
    for ev in &schedule {
        if let FaultKind::LinkFailure { link, .. } = ev.kind {
            hit.insert(link);
        }
    }
    let total = access_links(&cs.fabric).len();
    assert!(
        hit.len() as f64 > total as f64 * 0.95,
        "only {}/{} access links ever failed",
        hit.len(),
        total
    );
}

#[test]
fn backup_swap_after_tor_level_loss_keeps_the_job_alive() {
    let mut cs = small_cluster();
    let rails = cs.fabric.host_params.rails;
    let mut hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();

    // An entire host dies (power). Swap in the standby under the same ToRs.
    let failed = hosts[3];
    for rail in 0..rails {
        for port in 0..2 {
            if let Some(l) = cs.fabric.hosts[failed as usize].nic_up[rail][port] {
                cs.fail_cable(l);
            }
        }
    }
    let replacement = hpn::core::swap_to_backup(&cs.fabric, &mut hosts, failed).unwrap();
    assert!(cs.fabric.hosts[replacement as usize].backup);

    let job = TrainingJob::new(
        ModelSpec::llama_7b(),
        ParallelismPlan::new(rails, 1, 8),
        hosts,
        rails,
        256,
    );
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());
    let rec = session.run_iteration(&mut cs);
    assert!(matches!(rec.outcome, IterationOutcome::Completed { .. }));
}

#[test]
fn asymmetric_link_failure_degrades_but_does_not_crash() {
    // §10's "asymmetric link states" lesson: the NIC→ToR direction dies
    // (bad optics + LFS notification lost) while ToR→NIC stays up. The
    // dual-ToR design turns this into degradation, not a crash.
    let mut cs = small_cluster();
    let rails = cs.fabric.host_params.rails;
    let hosts = placement::place_segment_first(&cs.fabric, 8).unwrap();
    let mut model = ModelSpec::llama_7b();
    model.gpu_secs_per_sample = 0.2;
    let job = TrainingJob::new(model, ParallelismPlan::new(rails, 1, 8), hosts, rails, 256);
    let mut session = TrainingSession::new(job, CommConfig::hpn_default());
    session.run_iterations(&mut cs, 2);
    let baseline = session.records()[1].samples_per_sec;

    // Fail ONLY the uplink direction of host0 rail0 port0.
    let up = cs.fabric.hosts[0].nic_up[0][0].unwrap();
    cs.fail_link(up);
    // Let BGP converge, then measure.
    session.run_iteration(&mut cs);
    let rec = session.run_iteration(&mut cs);
    assert!(
        matches!(rec.outcome, IterationOutcome::Completed { .. }),
        "asymmetric failure must not crash dual-ToR training"
    );
    assert!(
        rec.samples_per_sec <= baseline,
        "one-directional loss cannot speed things up"
    );
    // And the reverse direction genuinely stayed up.
    let down = cs.fabric.hosts[0].nic_down[0][0].unwrap();
    assert!(cs.net.link(down.flow_link()).up);
}

#[test]
fn built_fabrics_pass_the_wiring_blueprint() {
    // The §10 INT-probe check, applied to every builder at test scale.
    for fabric in [
        HpnConfig::tiny().build(),
        HpnConfig::medium().build(),
        hpn::topology::DcnPlusConfig::tiny().build(),
    ] {
        let violations = wiring::validate_blueprint(&fabric);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
